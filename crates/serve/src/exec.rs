//! The verb hub: one implementation per verb, shared verbatim by the
//! batch CLI and the resident server.
//!
//! Every verb parses the same argv tokens, runs against the same
//! [`Registry`], and *renders its result to a `String`* instead of
//! printing — the CLI prints the string, the server frames it onto the
//! wire.  One source of truth per verb is what makes the served results
//! bit-identical to batch mode: there is no second code path to drift.
//!
//! Budgets are threaded through [`ExecContext`]: a per-request default
//! deadline (the server's guard against runaway requests) and a shared
//! cancellation flag (Ctrl-C in the CLI, client disconnect in a served
//! session) merge with the request's own `--time-limit`/`--max-evals`
//! flags into one [`Budget`] per request.

use std::collections::HashMap;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::AtomicBool;
use std::sync::{Arc, Mutex};
use std::time::Duration;

use wrt_atpg::{generate_tests_budgeted, AtpgConfig, BacktraceGuidance, ATPG_CHECKPOINT_KIND};
use wrt_circuit::{Circuit, CircuitStats, GateKind};
use wrt_core::{
    optimize_budgeted, quantize_weights, required_test_length, OptimizeConfig, TestLength,
    OPTIMIZE_CHECKPOINT_KIND,
};
use wrt_estimate::{
    CopEngine, DetectionProbabilityEngine, EcoMutation, IncrementalCop, MonteCarloEngine,
    SessionCop, StafanEngine,
};
use wrt_robust::failpoint::{self, sites};
use wrt_robust::{Budget, BudgetExceeded, Checkpoint, Progress, RunOutcome};
use wrt_sim::{
    fault_coverage_robust, fault_coverage_tiled_robust, BatchMode, SimEngineKind, SimOptions,
    TileOptions, WeightedPatterns,
};

use crate::registry::{weight_key, CircuitEntry, Registry};

pub use crate::registry::load_circuit;

pub const USAGE: &str = "usage: wrt <command> [args]

commands:
  stats    <circuit>                              circuit statistics
  analyze  <circuit | all> [--lint] [--json]
           static testability report: SCOAP controllability/observability
           summary, FFR/reconvergence census, and structural lints.
           `all` sweeps every built-in workload.  --lint prints findings
           only and exits nonzero if any lint fires (CI gate); --json
           emits the machine-readable report (including the circuit uid
           and stable structural digest).  A .bench file path is
           additionally linted at the text level (combinational loops,
           undriven nets) before parsing.
  estimate <circuit> [--weights w1,w2,...] [--confidence C] [--top K]
           COP detection probabilities over the experiment fault set at
           the given input weights (default equiprobable): summary
           statistics, the required weighted-random test length at
           confidence C (default 0.999), and the K hardest faults
           (default 5).  Served warm: the baseline is cached per
           (circuit, weight vector) in the registry.
  eco      <circuit> --set g=KIND[,g=KIND...] [--weights w1,...] [--top K]
           what-if ECO query: with the named gates virtually replaced by
           the given kinds (AND, NAND, OR, NOR, XOR, XNOR, NOT, BUF),
           reports the testability deltas — changed probabilities /
           observabilities / fault detection probabilities and the K
           largest detection-probability moves — from the session's
           pending-overlay machinery instead of a cold recompute.
           Results are bit-identical to rebuilding the mutated circuit.
  optimize <circuit> [--grid G] [--confidence C] [--engine E] [--threads T]
           [--seed S] [--mc-patterns N] [--commit-batch K]
           [--seed-weights uniform|scoap]
           [--time-limit SECS] [--max-evals N] [--checkpoint F] [--resume F]
           optimized input probabilities;
           E = incremental-cop (default; cone-restricted per-coordinate
           recompute, bit-identical to cop) | cop | stafan | monte-carlo
           (--seed and --mc-patterns apply to the sampling engines).
           --commit-batch K (incremental-cop only, default 4) defers up
           to K coordinate moves in a pending overlay before
           materializing; K = 0 or 1 commits every move immediately.
           Results are bit-identical for every K.
           --seed-weights scoap starts the descent at the SCOAP-derived
           input bias instead of the jittered equiprobable point.
  simulate <circuit> --patterns N [--weights w1,w2,...] [--seed S] [--threads T]
           [--engine dense|event] [--block-words W] [--pattern-stripes P]
           [--time-limit SECS] [--max-evals N]
           weighted-random fault simulation;
           --engine event (default) runs event-driven sparse propagation
           over W-word superblocks (--block-words 1|2|4|8|16, default 4);
           --engine dense is the single-word reference cone walk.
           --pattern-stripes P switches to the 2D tiled engine (fault
           shards × pattern stripes with work stealing and dense
           multi-fault batching; requires --engine event): P = 0 picks
           the stripe count automatically, oversized P is clamped, and
           --block-words defaults to auto instead of 4.
           Coverage is bit-identical for every engine/width/thread/stripe
           choice.
  atpg     <circuit> [--backtracks B] [--guidance cop|scoap|unguided]
           [--degrade] [--time-limit SECS] [--max-evals N]
           [--max-backtracks-total N] [--checkpoint F] [--resume F]
           deterministic test generation; --guidance picks the backtrace
           controllability model (default cop — conclusions are identical
           either way, only the backtrack spend differs).  --degrade
           retries guided aborts once with the unguided backtrace.
  generate [--gates N] [--seed S] [--out FILE]
           tiled synthetic netlist for scale work: composes the built-in
           workloads into a lint-clean circuit of at least N gates
           (default 10000, seed 42), deterministic by (N, seed), written
           as .bench to FILE or stdout.
  load     <circuit>                              register a circuit, print its uid
  stat                                            registry contents and cache counters
  flush                                           drop every cached circuit and baseline
  workloads                                       list built-in circuits
  serve    [--addr HOST:PORT] [--deadline SECS]   resident server (line protocol)
  client   <addr> <command ...>                   send one command to a server

<circuit> is a workload name (see `wrt workloads`), a .bench file path,
or `#<uid>` for a circuit already registered via `load`.  `wrt --remote
<addr> <command ...>` forwards any command to a running server; `wrt
client` is the same thing spelled as a verb.
--threads T runs PPSFP fault simulation on T sharded worker threads
(default: auto; results are identical for any T).  For optimize it
requires --engine monte-carlo, the engine that fault-simulates.

budgets: --time-limit SECS (wall clock, fractional ok) and --max-evals N
bound a run; --max-backtracks-total N additionally bounds atpg.  The
eval unit is deterministic per command: simulate counts gate evaluations
of fault-free simulation (node count × patterns), optimize counts engine
calls, atpg counts PODEM calls.  A tripped budget is not an error: the
partial result is reported, and optimize/atpg write their resume state
to the --checkpoint file (default: the --resume path).  Ctrl-C raises
the same machinery: the run is interrupted at its next check-in with a
structured partial result (and checkpoint) instead of a killed process.
--resume F continues bit-identically from a checkpoint; a missing,
corrupt, version-mismatched, or wrong-circuit file is a clean error —
garbage is never loaded.";

/// Everything a verb needs besides its argv: the shared registry, the
/// environment's budget defaults, and per-session ECO overlay state.
pub struct ExecContext {
    registry: Arc<Registry>,
    default_deadline: Option<Duration>,
    cancel: Option<Arc<AtomicBool>>,
    /// `(circuit uid, weight key)` → reusable overlay scratch.  Lives in
    /// the context (one per CLI process / per served session) so
    /// consecutive ECO queries reuse their allocation; a panic while it
    /// is locked poisons only this session.
    eco_sessions: Mutex<HashMap<(u64, u64), SessionCop>>,
}

impl ExecContext {
    /// A context over `registry` with no budget defaults.
    pub fn new(registry: Arc<Registry>) -> Self {
        ExecContext {
            registry,
            default_deadline: None,
            cancel: None,
            eco_sessions: Mutex::new(HashMap::new()),
        }
    }

    /// Applies a default wall-clock deadline to every budgeted request
    /// that does not set its own `--time-limit`.
    pub fn with_default_deadline(mut self, deadline: Option<Duration>) -> Self {
        self.default_deadline = deadline;
        self
    }

    /// Attaches a cancellation flag (Ctrl-C, client disconnect) to every
    /// budgeted request.
    pub fn with_cancel(mut self, cancel: Arc<AtomicBool>) -> Self {
        self.cancel = Some(cancel);
        self
    }

    /// The shared registry behind this context.
    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }
}

/// Dispatches one request (CLI argv or protocol line) to its verb.
///
/// # Errors
///
/// Every failure — unknown verb, bad flag, unresolvable circuit,
/// refused resume — is a rendered message, never a panic.
pub fn execute(ctx: &ExecContext, argv: &[String]) -> Result<String, String> {
    let Some((verb, rest)) = argv.split_first() else {
        return Err(format!("empty request\n{USAGE}"));
    };
    match verb.as_str() {
        "stats" => stats(ctx, rest),
        "analyze" => analyze(ctx, rest),
        "estimate" => estimate(ctx, rest),
        "eco" => eco(ctx, rest),
        "optimize" => optimize(ctx, rest),
        "simulate" => simulate(ctx, rest),
        "atpg" => atpg(ctx, rest),
        "generate" => generate(rest),
        "load" => load(ctx, rest),
        "stat" => Ok(stat(ctx)),
        "flush" => Ok(flush(ctx)),
        "workloads" => Ok(workloads_list()),
        "help" | "--help" | "-h" => Ok(format!("{USAGE}\n")),
        "shutdown" => Err("shutdown only applies to a served session".into()),
        other => Err(format!("unknown command `{other}`\n{USAGE}")),
    }
}

/// Loads a circuit directly (no registry).  The batch-compatible form
/// kept for callers that need an owned [`Circuit`].
pub fn circuit_arg(args: &[String]) -> Result<Circuit, String> {
    let name = circuit_name_arg(args)?;
    load_circuit(name)
}

fn circuit_name_arg(args: &[String]) -> Result<&String, String> {
    args.iter()
        .find(|a| !a.starts_with("--") && !is_flag_value(args, a))
        .ok_or_else(|| format!("missing circuit argument\n{USAGE}"))
}

fn entry_arg(ctx: &ExecContext, args: &[String]) -> Result<Arc<CircuitEntry>, String> {
    ctx.registry.resolve(circuit_name_arg(args)?)
}

/// The value following `--name`, if present.
pub fn flag_value<'a>(args: &'a [String], name: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

/// Parses `--name value` with a default, as a clean error on garbage.
pub fn parse_flag<T: std::str::FromStr>(
    args: &[String],
    name: &str,
    default: T,
) -> Result<T, String> {
    match flag_value(args, name) {
        None => Ok(default),
        Some(raw) => raw
            .parse()
            .map_err(|_| format!("invalid value `{raw}` for {name}")),
    }
}

fn is_flag_value(args: &[String], candidate: &String) -> bool {
    args.iter()
        .position(|a| std::ptr::eq(a, candidate))
        .is_some_and(|i| i > 0 && args[i - 1].starts_with("--"))
}

/// Parses the shared budget flags and merges the context's defaults:
/// `allow_backtracks` gates `--max-backtracks-total`, which only the
/// atpg search can honor; the context contributes a default deadline
/// (when the request sets no `--time-limit`) and the cancellation flag.
fn budget_arg(
    ctx: &ExecContext,
    args: &[String],
    allow_backtracks: bool,
) -> Result<Budget, String> {
    let mut budget = Budget::unlimited();
    match flag_value(args, "--time-limit") {
        Some(raw) => {
            let secs: f64 = raw
                .parse()
                .map_err(|_| format!("invalid value `{raw}` for --time-limit"))?;
            if !secs.is_finite() || secs < 0.0 {
                return Err("--time-limit is a non-negative number of seconds".into());
            }
            budget = budget.with_time_limit(Duration::from_secs_f64(secs));
        }
        None => {
            if let Some(deadline) = ctx.default_deadline {
                budget = budget.with_time_limit(deadline);
            }
        }
    }
    if let Some(raw) = flag_value(args, "--max-evals") {
        let max: u64 = raw
            .parse()
            .map_err(|_| format!("invalid value `{raw}` for --max-evals"))?;
        budget = budget.with_max_evals(max);
    }
    if let Some(raw) = flag_value(args, "--max-backtracks-total") {
        if !allow_backtracks {
            return Err("--max-backtracks-total only applies to atpg".into());
        }
        let max: u64 = raw
            .parse()
            .map_err(|_| format!("invalid value `{raw}` for --max-backtracks-total"))?;
        budget = budget.with_max_backtracks(max);
    }
    if let Some(cancel) = &ctx.cancel {
        budget = budget.with_cancel(Arc::clone(cancel));
    }
    Ok(budget)
}

/// Loads the `--resume` checkpoint of the given subsystem kind.
/// Missing, corrupt, truncated, version-mismatched, and foreign-kind
/// files are all clean errors; damaged state is never deserialized.
fn resume_arg(args: &[String], kind: &str) -> Result<Option<Checkpoint>, String> {
    match flag_value(args, "--resume") {
        None => Ok(None),
        Some(path) => Checkpoint::read(Path::new(path), kind)
            .map(Some)
            .map_err(|e| format!("cannot resume from `{path}`: {e}")),
    }
}

/// Where an interrupted run should write its resume state: the
/// `--checkpoint` path, or (so a crash-loop workflow needs one flag) the
/// `--resume` path it was loaded from.
fn checkpoint_path_arg(args: &[String]) -> Option<PathBuf> {
    flag_value(args, "--checkpoint")
        .or_else(|| flag_value(args, "--resume"))
        .map(PathBuf::from)
}

fn report_interrupt(out: &mut String, what: &str, reason: BudgetExceeded, progress: &Progress) {
    let total = progress
        .total
        .map_or_else(String::new, |t| format!(" of {t}"));
    let _ = writeln!(
        out,
        "{what} interrupted ({reason}) after {}{total} {}",
        progress.done, progress.unit
    );
}

/// Persists an interrupted run's checkpoint, or says why it cannot.
fn write_checkpoint(
    out: &mut String,
    ckpt: &Checkpoint,
    path: Option<&PathBuf>,
) -> Result<(), String> {
    match path {
        None => {
            let _ = writeln!(out, "no --checkpoint path given; resume state discarded");
            Ok(())
        }
        Some(p) => {
            ckpt.write_atomic(p)
                .map_err(|e| format!("writing checkpoint: {e}"))?;
            let _ = writeln!(
                out,
                "resume state written to `{}` (pass --resume to continue)",
                p.display()
            );
            Ok(())
        }
    }
}

/// Parses `--weights w1,w2,...` (default equiprobable).
fn weights_arg(args: &[String], num_inputs: usize) -> Result<Vec<f64>, String> {
    match flag_value(args, "--weights") {
        None => Ok(vec![0.5; num_inputs]),
        Some(raw) => {
            let parsed: Result<Vec<f64>, _> = raw.split(',').map(str::parse).collect();
            let parsed = parsed.map_err(|_| "invalid --weights list".to_string())?;
            if parsed.len() != num_inputs {
                return Err(format!(
                    "--weights needs {num_inputs} values, got {}",
                    parsed.len()
                ));
            }
            Ok(parsed)
        }
    }
}

// Infallible, but every verb shares the Result signature the dispatcher
// expects.
#[allow(clippy::unnecessary_wraps)]
pub fn generate(args: &[String]) -> Result<String, String> {
    let gates: usize = parse_flag(args, "--gates", 10_000)?;
    let seed: u64 = parse_flag(args, "--seed", 42)?;
    let circuit = wrt_workloads::tiled(gates, seed);
    let text = wrt_circuit::to_bench(&circuit);
    match flag_value(args, "--out") {
        Some(path) => {
            std::fs::write(path, &text).map_err(|e| format!("writing `{path}`: {e}"))?;
            Ok(format!(
                "wrote {} ({} gates, {} inputs, {} outputs) to {path}\n",
                circuit.name(),
                circuit.num_gates(),
                circuit.num_inputs(),
                circuit.num_outputs()
            ))
        }
        None => Ok(text),
    }
}

pub fn workloads_list() -> String {
    let mut out = String::new();
    for name in wrt_workloads::WORKLOAD_NAMES {
        let circuit = wrt_workloads::by_name(name).expect("registered");
        let _ = writeln!(
            out,
            "{name:10} {:4} inputs {:4} outputs {:5} gates",
            circuit.num_inputs(),
            circuit.num_outputs(),
            circuit.num_gates()
        );
    }
    out
}

pub fn stats(ctx: &ExecContext, args: &[String]) -> Result<String, String> {
    let entry = entry_arg(ctx, args)?;
    let circuit = entry.circuit();
    let mut out = String::new();
    let _ = write!(out, "{}", CircuitStats::of(circuit));
    let _ = writeln!(out, "  uid: {}", circuit.uid());
    let _ = writeln!(out, "  digest: {:016x}", circuit.structural_digest());
    let m = circuit.memory_footprint();
    let _ = writeln!(out, "{m}");
    let _ = writeln!(out, "  bytes/gate: {:.1}", m.bytes_per_gate(circuit.num_gates()));
    Ok(out)
}

pub fn analyze(ctx: &ExecContext, args: &[String]) -> Result<String, String> {
    let lint_only = args.iter().any(|a| a == "--lint");
    let json = args.iter().any(|a| a == "--json");
    let target = args
        .iter()
        .find(|a| !a.starts_with("--") && !is_flag_value(args, a))
        .ok_or_else(|| format!("missing circuit argument (or `all`)\n{USAGE}"))?;
    let mut out = String::new();

    // (name, circuit, text-level findings for .bench files).
    let mut subjects: Vec<(String, Arc<Circuit>, Vec<wrt_analyze::Finding>)> = Vec::new();
    if target == "all" {
        for name in wrt_workloads::WORKLOAD_NAMES {
            let entry = ctx.registry.resolve(name)?;
            subjects.push(((*name).to_string(), Arc::clone(entry.circuit()), Vec::new()));
        }
    } else if wrt_workloads::by_name(target).is_some() || target.starts_with('#') {
        let entry = ctx.registry.resolve(target)?;
        subjects.push((target.clone(), Arc::clone(entry.circuit()), Vec::new()));
    } else {
        let text = std::fs::read_to_string(target).map_err(|e| {
            format!("`{target}` is neither a workload name, `all`, nor a readable file: {e}")
        })?;
        // Text-level lints first: they catch loops and undriven nets that
        // would make parsing fail outright.
        let text_findings = wrt_analyze::lint_bench_text(&text);
        match ctx.registry.resolve(target) {
            Ok(entry) => {
                subjects.push((target.clone(), Arc::clone(entry.circuit()), text_findings));
            }
            Err(e) => {
                if text_findings.is_empty() {
                    return Err(e);
                }
                for finding in &text_findings {
                    let _ = writeln!(out, "{finding}");
                }
                return Err(format!("{out}{target}: netlist does not parse: {e}"));
            }
        }
    }

    let mut total_findings = 0usize;
    let mut json_reports = Vec::new();
    for (name, circuit, text_findings) in &subjects {
        let report = wrt_analyze::analyze(circuit);
        total_findings += text_findings.len() + report.findings.len();
        if lint_only {
            for finding in text_findings.iter().chain(&report.findings) {
                let _ = writeln!(out, "{name}: {finding}");
            }
        } else if json {
            json_reports.push(report.to_json());
        } else {
            for finding in text_findings {
                let _ = writeln!(out, "  text: {finding}");
            }
            let _ = write!(out, "{report}");
            let m = circuit.memory_footprint();
            let _ = writeln!(
                out,
                "memory: {} bytes ({:.1} bytes/gate)",
                m.total(),
                m.bytes_per_gate(circuit.num_gates())
            );
        }
    }
    if json && !lint_only {
        if subjects.len() == 1 {
            let _ = write!(out, "{}", json_reports[0]);
        } else {
            let _ = writeln!(out, "[{}]", json_reports.join(", "));
        }
    }
    if lint_only {
        if total_findings == 0 {
            let _ = writeln!(out, "lint clean: {} circuit(s), 0 findings", subjects.len());
            return Ok(out);
        }
        return Err(format!("{out}lint failed: {total_findings} finding(s)"));
    }
    Ok(out)
}

/// COP detection probabilities over the experiment fault set, served
/// from the registry's shared per-weight-vector baseline.
pub fn estimate(ctx: &ExecContext, args: &[String]) -> Result<String, String> {
    let entry = entry_arg(ctx, args)?;
    let circuit = entry.circuit();
    let weights = weights_arg(args, circuit.num_inputs())?;
    let confidence: f64 = parse_flag(args, "--confidence", 0.999)?;
    if !(0.0..1.0).contains(&confidence) || confidence <= 0.0 {
        return Err("--confidence must be in (0, 1)".into());
    }
    let top: usize = parse_flag(args, "--top", 5)?;
    let baseline = ctx.registry.baseline(&entry, &weights);
    let faults = entry.experiment_faults();
    let dp = baseline.detection_probabilities(faults);

    let mut out = String::new();
    let _ = writeln!(
        out,
        "estimate {}: {} faults over {} inputs",
        circuit.name(),
        faults.len(),
        circuit.num_inputs()
    );
    let mut sorted: Vec<(usize, f64)> = dp.iter().copied().enumerate().collect();
    sorted.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
    if let (Some(&(_, min)), Some(&(_, max))) = (sorted.first(), sorted.last()) {
        let median = sorted[sorted.len() / 2].1;
        let _ = writeln!(
            out,
            "detection probability: min {min:.6e}, median {median:.6e}, max {max:.6e}"
        );
    }
    match required_test_length(&dp, 1.0 - confidence) {
        TestLength::Patterns { n, num_relevant } => {
            let _ = writeln!(
                out,
                "test length N({confidence}): {n:.3e} patterns ({num_relevant} relevant faults)"
            );
        }
        TestLength::Infinite => {
            let _ = writeln!(
                out,
                "test length N({confidence}): infinite (some fault has zero detection probability)"
            );
        }
    }
    let hardest = sorted.iter().take(top);
    let fault_slice = faults.as_slice();
    for &(i, p) in hardest {
        let _ = writeln!(out, "  hard: {} p={p:.6e}", fault_slice[i].describe(circuit));
    }
    Ok(out)
}

fn parse_mutations(circuit: &Circuit, spec: &str) -> Result<Vec<EcoMutation>, String> {
    let mut mutations = Vec::new();
    for item in spec.split(',') {
        let Some((name, kind_raw)) = item.split_once('=') else {
            return Err(format!(
                "malformed --set item `{item}` (expected gate=KIND)"
            ));
        };
        let gate = circuit
            .node_id(name)
            .ok_or_else(|| format!("no node named `{name}` in {}", circuit.name()))?;
        let kind: GateKind = kind_raw
            .parse()
            .map_err(|_| format!("unknown gate kind `{kind_raw}` in --set"))?;
        mutations.push(EcoMutation { gate, kind });
    }
    Ok(mutations)
}

/// What-if ECO query: testability deltas from the session's pending
/// overlay instead of a cold recompute.
pub fn eco(ctx: &ExecContext, args: &[String]) -> Result<String, String> {
    let entry = entry_arg(ctx, args)?;
    let circuit = Arc::clone(entry.circuit());
    let weights = weights_arg(args, circuit.num_inputs())?;
    let top: usize = parse_flag(args, "--top", 5)?;
    let spec = flag_value(args, "--set")
        .ok_or_else(|| "eco requires --set gate=KIND[,gate=KIND...]".to_string())?;
    let mutations = parse_mutations(&circuit, spec)?;
    failpoint::hit(sites::SERVE_ECO_APPLY).map_err(|e| e.to_string())?;

    let baseline = ctx.registry.baseline(&entry, &weights);
    let faults = entry.experiment_faults();
    let base_dp = baseline.detection_probabilities(faults);

    let key = (circuit.uid(), weight_key(&weights));
    let mut sessions = ctx
        .eco_sessions
        .lock()
        .map_err(|_| "session poisoned by an earlier panic; reconnect to recover".to_string())?;
    let session = sessions
        .entry(key)
        .or_insert_with(|| SessionCop::new(Arc::clone(&baseline)));
    let (dp, eco_stats) = session.what_if(&mutations, faults)?;
    drop(sessions);

    let mut out = String::new();
    let _ = writeln!(out, "eco {}: {} gate(s) mutated", circuit.name(), mutations.len());
    for m in &mutations {
        let node = circuit.node(m.gate);
        let _ = writeln!(out, "  {} {:?} -> {:?}", node.name(), node.kind(), m.kind);
    }
    let _ = writeln!(
        out,
        "cone: {} node(s); overlay evals {} vs cold {} ({:.1}x fewer)",
        eco_stats.cone_nodes,
        eco_stats.overlay_evals(),
        eco_stats.cold_evals,
        eco_stats.eval_reduction()
    );
    let mut deltas: Vec<(usize, f64, f64)> = base_dp
        .iter()
        .zip(&dp)
        .enumerate()
        .filter(|(_, (b, a))| a.to_bits() != b.to_bits())
        .map(|(i, (&b, &a))| (i, b, a))
        .collect();
    let _ = writeln!(
        out,
        "changed: {} signal probabilities, {} observabilities, {} fault detection probabilities",
        eco_stats.changed_probabilities,
        eco_stats.changed_observabilities,
        deltas.len()
    );
    deltas.sort_by(|x, y| {
        (y.2 - y.1)
            .abs()
            .total_cmp(&(x.2 - x.1).abs())
            .then(x.0.cmp(&y.0))
    });
    let fault_slice = faults.as_slice();
    for &(i, before, after) in deltas.iter().take(top) {
        let _ = writeln!(
            out,
            "  delta: {} {before:.6e} -> {after:.6e}",
            fault_slice[i].describe(&circuit)
        );
    }
    Ok(out)
}

/// Registers a circuit and reports its identity (uid, stable digest).
pub fn load(ctx: &ExecContext, args: &[String]) -> Result<String, String> {
    let entry = entry_arg(ctx, args)?;
    let c = entry.circuit();
    Ok(format!(
        "loaded {}: uid {}, digest {:016x}, {} nodes, {} inputs, {} outputs, {} gates\n",
        c.name(),
        c.uid(),
        c.structural_digest(),
        c.num_nodes(),
        c.num_inputs(),
        c.num_outputs(),
        c.num_gates()
    ))
}

/// Registry contents and cache counters.
pub fn stat(ctx: &ExecContext) -> String {
    let mut out = String::new();
    let circuits = ctx.registry.circuits();
    let _ = writeln!(
        out,
        "registry: {} circuit(s), {} baseline(s)",
        circuits.len(),
        ctx.registry.num_baselines()
    );
    for (uid, name, nodes) in circuits {
        let _ = writeln!(out, "  #{uid} {name} ({nodes} nodes)");
    }
    let (resolves, hits, misses) = ctx.registry.counter_snapshot();
    let _ = writeln!(
        out,
        "counters: {resolves} resolve(s), {hits} baseline hit(s), {misses} baseline miss(es)"
    );
    out
}

/// Drops every cached circuit and baseline.
pub fn flush(ctx: &ExecContext) -> String {
    let (circuits, baselines) = ctx.registry.flush();
    ctx.eco_sessions
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .clear();
    format!("registry flushed: {circuits} circuit(s), {baselines} baseline(s) dropped\n")
}

/// Builds the detection-probability engine selected by `--engine`,
/// threading `--threads` into the Monte-Carlo simulation path.
///
/// Sampling-only flags are rejected for engines that cannot honor them,
/// instead of being silently ignored.
pub fn engine_arg(args: &[String]) -> Result<Box<dyn DetectionProbabilityEngine>, String> {
    let engine = flag_value(args, "--engine").unwrap_or("incremental-cop");
    if !["incremental-cop", "cop", "stafan", "monte-carlo"].contains(&engine) {
        return Err(format!(
            "unknown engine `{engine}` (expected incremental-cop, cop, stafan, or monte-carlo)"
        ));
    }
    if engine != "monte-carlo" {
        for flag in ["--threads", "--mc-patterns"] {
            if flag_value(args, flag).is_some() {
                return Err(format!(
                    "{flag} only applies to fault-simulating engines; add --engine monte-carlo"
                ));
            }
        }
    }
    if engine.ends_with("cop") && flag_value(args, "--seed").is_some() {
        return Err("--seed only applies to sampling engines (stafan, monte-carlo)".into());
    }
    if engine != "incremental-cop" && flag_value(args, "--commit-batch").is_some() {
        return Err(
            "--commit-batch only applies to the pending-overlay engine; use --engine incremental-cop"
                .into(),
        );
    }
    let threads: usize = parse_flag(args, "--threads", 0)?;
    let seed: u64 = parse_flag(args, "--seed", 42)?;
    Ok(match engine {
        "incremental-cop" => {
            // Default batch 4: the measured sweet spot on the wide- and
            // global-cone workloads; 0/1 fall back to per-move commits.
            let batch: usize = parse_flag(args, "--commit-batch", 4)?;
            Box::new(IncrementalCop::new().with_commit_batch(batch))
        }
        "cop" => Box::new(CopEngine::new()),
        "stafan" => Box::new(StafanEngine::new(64 * 256, seed)),
        "monte-carlo" => {
            let patterns: u64 = parse_flag(args, "--mc-patterns", 64 * 256)?;
            Box::new(MonteCarloEngine::new(patterns, seed).with_threads(threads))
        }
        _ => unreachable!("engine name validated above"),
    })
}

pub fn optimize(ctx: &ExecContext, args: &[String]) -> Result<String, String> {
    let entry = entry_arg(ctx, args)?;
    let circuit = entry.circuit();
    let grid: f64 = parse_flag(args, "--grid", 0.05)?;
    if !(grid > 0.0 && grid < 0.5) {
        return Err("--grid is a spacing in (0, 0.5), e.g. 0.05".into());
    }
    let confidence: f64 = parse_flag(args, "--confidence", 0.999)?;
    if !(0.0..1.0).contains(&confidence) || confidence <= 0.0 {
        return Err("--confidence must be in (0, 1)".into());
    }
    let faults = entry.experiment_faults();
    let config = OptimizeConfig {
        confidence,
        ..OptimizeConfig::default()
    };
    let config = match flag_value(args, "--seed-weights") {
        None | Some("uniform") => config,
        Some("scoap") => config.scoap_seeded(circuit),
        Some(other) => {
            return Err(format!(
                "unknown --seed-weights `{other}` (expected uniform or scoap)"
            ))
        }
    };
    let mut engine = engine_arg(args)?;
    let budget = budget_arg(ctx, args, false)?;
    let resume = resume_arg(args, OPTIMIZE_CHECKPOINT_KIND)?;
    let run = optimize_budgeted(
        circuit,
        faults,
        engine.as_mut(),
        &config,
        &budget,
        resume.as_ref(),
    )
    .map_err(|e| format!("cannot resume: {e}"))?;
    let mut out = String::new();
    let result = match run.outcome {
        RunOutcome::Complete(result) => result,
        RunOutcome::Interrupted {
            partial,
            reason,
            progress,
        } => {
            report_interrupt(&mut out, "optimization", reason, &progress);
            let ckpt = run.checkpoint.as_ref().expect("interrupted runs checkpoint");
            write_checkpoint(&mut out, ckpt, checkpoint_path_arg(args).as_ref())?;
            partial
        }
    };
    let _ = writeln!(
        out,
        "test length: {:.3e} -> {:.3e}  (factor {:.1}, {} sweeps, {} engine calls)",
        result.initial_length,
        result.final_length,
        result.improvement_factor(),
        result.sweeps.len(),
        result.engine_calls
    );
    let weights = quantize_weights(&result.weights, grid);
    let _ = writeln!(out, "optimized probabilities (grid {grid}):");
    for (&pi, w) in circuit.inputs().iter().zip(&weights) {
        let _ = writeln!(out, "  {:<12} {w:.2}", circuit.node(pi).name());
    }
    Ok(out)
}

pub fn simulate(ctx: &ExecContext, args: &[String]) -> Result<String, String> {
    let entry = entry_arg(ctx, args)?;
    let circuit = entry.circuit();
    let patterns: u64 = parse_flag(args, "--patterns", 0)?;
    if patterns == 0 {
        return Err("simulate requires --patterns N".into());
    }
    let seed: u64 = parse_flag(args, "--seed", 42)?;
    let weights = weights_arg(args, circuit.num_inputs())?;
    let threads: usize = parse_flag(args, "--threads", 0)?;
    let opts = sim_options_arg(args)?;
    let budget = budget_arg(ctx, args, false)?;
    let faults = entry.experiment_faults();
    let mut out = String::new();
    if flag_value(args, "--pattern-stripes").is_some() {
        let stripes: usize = parse_flag(args, "--pattern-stripes", 0)?;
        if opts.engine == SimEngineKind::Dense {
            return Err("--pattern-stripes requires --engine event (the 2D tiled \
                 engine's event axis); drop --engine dense"
                .into());
        }
        // With no explicit --block-words the tiled engine picks the
        // width itself (pattern count and cache budget), instead of
        // inheriting the 1D default of 4.
        let block_words = if flag_value(args, "--block-words").is_some() {
            opts.block_words
        } else {
            0
        };
        let topts = TileOptions {
            block_words,
            pattern_stripes: stripes,
            fault_shards: 0,
            threads,
            batch: BatchMode::Auto,
        };
        let outcome = fault_coverage_tiled_robust(
            circuit,
            faults,
            WeightedPatterns::new(weights, seed),
            patterns,
            true,
            &topts,
            &budget,
        );
        let robust = match outcome {
            RunOutcome::Complete(robust) => robust,
            RunOutcome::Interrupted {
                partial,
                reason,
                progress,
            } => {
                report_interrupt(&mut out, "simulation", reason, &progress);
                partial
            }
        };
        let _ = writeln!(out, "{}", robust.result);
        if !robust.recovery.is_clean() {
            let _ = writeln!(
                out,
                "tile recovery: {} worker panic(s), {} replay(s), {} unresolved — {}",
                robust.recovery.worker_panics,
                robust.recovery.replays,
                robust.recovery.unresolved.len(),
                robust.recovery.ladder,
            );
        }
        let s = robust.stats;
        let _ = writeln!(
            out,
            "engine tiled-2d (W={}): {} stripe(s) × {} shard(s) on {} thread(s), \
             {} tile(s), {} steal(s), {} batched fault(s) in {} batch(es)",
            s.block_words, s.stripes, s.shards, s.threads, s.tiles, s.steals,
            s.batch_dense_faults, s.batches,
        );
        let _ = writeln!(
            out,
            "gate evals: {} total ({} event axis, {} batch axis, {} probe)",
            s.sim.node_evals, s.event_node_evals, s.batch_node_evals, s.probe_node_evals,
        );
        return Ok(out);
    }
    let outcome = fault_coverage_robust(
        circuit,
        faults,
        WeightedPatterns::new(weights, seed),
        patterns,
        true,
        threads,
        opts,
        &budget,
    );
    let robust = match outcome {
        RunOutcome::Complete(robust) => robust,
        RunOutcome::Interrupted {
            partial,
            reason,
            progress,
        } => {
            report_interrupt(&mut out, "simulation", reason, &progress);
            partial
        }
    };
    let _ = writeln!(out, "{}", robust.result);
    if !robust.recovery.is_clean() {
        let _ = writeln!(
            out,
            "shard recovery: {} worker panic(s), {} replay(s), {} unresolved — {}",
            robust.recovery.worker_panics,
            robust.recovery.replays,
            robust.recovery.unresolved.len(),
            robust.recovery.ladder,
        );
    }
    let detected = robust.result.num_detected();
    if detected > 0 {
        let _ = writeln!(
            out,
            "engine {}: {} gate evals ({:.1} per detected fault, {:.1} % frontier die-out)",
            opts.engine,
            robust.stats.node_evals,
            robust.stats.node_evals as f64 / detected as f64,
            robust.stats.frontier_dieout_rate() * 100.0,
        );
    }
    Ok(out)
}

/// Parses the simulate subcommand's `--engine dense|event` and
/// `--block-words W` into validated [`SimOptions`].
pub fn sim_options_arg(args: &[String]) -> Result<SimOptions, String> {
    let engine: SimEngineKind = match flag_value(args, "--engine") {
        None => SimEngineKind::Event,
        Some(raw) => raw.parse()?,
    };
    let default_words = match engine {
        SimEngineKind::Event => 4,
        SimEngineKind::Dense => 1,
    };
    let block_words: usize = parse_flag(args, "--block-words", default_words)?;
    let opts = SimOptions {
        engine,
        block_words,
    };
    opts.validate()?;
    Ok(opts)
}

pub fn atpg(ctx: &ExecContext, args: &[String]) -> Result<String, String> {
    let entry = entry_arg(ctx, args)?;
    let circuit = entry.circuit();
    let backtracks: usize = parse_flag(args, "--backtracks", 10_000)?;
    let guidance = match flag_value(args, "--guidance") {
        None | Some("cop") => BacktraceGuidance::Cop,
        Some("scoap") => BacktraceGuidance::Scoap,
        Some("unguided") => BacktraceGuidance::Unguided,
        Some(other) => {
            return Err(format!(
                "unknown --guidance `{other}` (expected cop, scoap, or unguided)"
            ))
        }
    };
    let faults = entry.atpg_faults();
    let config = AtpgConfig {
        backtrack_limit: backtracks,
        guidance,
        degrade_on_abort: args.iter().any(|a| a == "--degrade"),
        ..AtpgConfig::default()
    };
    let budget = budget_arg(ctx, args, true)?;
    let resume = resume_arg(args, ATPG_CHECKPOINT_KIND)?;
    let run = generate_tests_budgeted(circuit, faults, &config, &budget, resume.as_ref())
        .map_err(|e| format!("cannot resume: {e}"))?;
    let mut out = String::new();
    let report = match run.outcome {
        RunOutcome::Complete(report) => report,
        RunOutcome::Interrupted {
            partial,
            reason,
            progress,
        } => {
            report_interrupt(&mut out, "atpg", reason, &progress);
            let ckpt = run.checkpoint.as_ref().expect("interrupted runs checkpoint");
            write_checkpoint(&mut out, ckpt, checkpoint_path_arg(args).as_ref())?;
            partial
        }
    };
    let _ = writeln!(
        out,
        "{} faults: {} detected, {} redundant, {} aborted, {} not attempted",
        faults.len(),
        report.detected.len(),
        report.redundant.len(),
        report.aborted.len(),
        report.survivors.len()
    );
    let _ = writeln!(
        out,
        "{} tests generated with {} PODEM calls, {} backtracks (coverage {:.1} %)",
        report.tests.len(),
        report.podem_calls,
        report.backtracks,
        report.coverage() * 100.0
    );
    if !run.ladder.is_empty() {
        let _ = writeln!(out, "degradation: {}", run.ladder);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(ToString::to_string).collect()
    }

    fn ctx() -> ExecContext {
        ExecContext::new(Arc::new(Registry::new()))
    }

    #[test]
    fn execute_dispatches_and_rejects_unknowns() {
        let c = ctx();
        assert!(execute(&c, &args(&["workloads"])).is_ok());
        assert!(execute(&c, &args(&["stats", "s1"])).is_ok());
        assert!(execute(&c, &args(&["no-such-verb"])).is_err());
        assert!(execute(&c, &[]).is_err());
        assert!(execute(&c, &args(&["shutdown"])).is_err());
    }

    #[test]
    fn stats_reports_uid_and_digest() {
        let c = ctx();
        let out = stats(&c, &args(&["s1"])).expect("stats");
        assert!(out.contains("uid: "), "{out}");
        assert!(out.contains("digest: "), "{out}");
        // The uid line matches the registered circuit.
        let entry = c.registry().resolve("s1").expect("registered");
        assert!(out.contains(&format!("uid: {}", entry.circuit().uid())));
    }

    #[test]
    fn estimate_is_deterministic_and_warm_hits_the_cache() {
        let c = ctx();
        let a = estimate(&c, &args(&["c880ish"])).expect("cold");
        let b = estimate(&c, &args(&["c880ish"])).expect("warm");
        assert_eq!(a, b, "cache must not change rendered results");
        let (_, hits, misses) = c.registry().counter_snapshot();
        assert_eq!((hits, misses), (1, 1));
        assert!(a.contains("test length"), "{a}");
        // Weighted query builds a second baseline.
        let n = c
            .registry()
            .resolve("c880ish")
            .expect("entry")
            .circuit()
            .num_inputs();
        let w: Vec<&str> = vec!["0.25"; n];
        let q = args(&["c880ish", "--weights", &w.join(",")]);
        assert!(estimate(&c, &q).is_ok());
        assert_eq!(c.registry().num_baselines(), 2);
        // Malformed weights are clean errors.
        assert!(estimate(&c, &args(&["c880ish", "--weights", "0.5"])).is_err());
        assert!(estimate(&c, &args(&["c880ish", "--confidence", "2"])).is_err());
    }

    #[test]
    fn eco_reports_deltas_and_validates_its_spec() {
        let c = ctx();
        let entry = c.registry().resolve("c880ish").expect("workload");
        // Find a mutable 2-input gate to flip.
        let circuit = entry.circuit();
        let (gate_name, flipped) = circuit
            .iter()
            .find_map(|(_, n)| match n.kind() {
                GateKind::And => Some((n.name().to_string(), "OR")),
                GateKind::Nand => Some((n.name().to_string(), "NOR")),
                _ => None,
            })
            .expect("has a flippable gate");
        let spec = format!("{gate_name}={flipped}");
        let out = eco(&c, &args(&["c880ish", "--set", &spec])).expect("eco runs");
        assert!(out.contains("overlay evals"), "{out}");
        assert!(out.contains("x fewer"), "{out}");
        // Same query again reuses the session scratch, bit-identically.
        let again = eco(&c, &args(&["c880ish", "--set", &spec])).expect("warm eco");
        assert_eq!(out, again);
        // Structured errors, not panics.
        assert!(eco(&c, &args(&["c880ish"])).is_err(), "missing --set");
        assert!(eco(&c, &args(&["c880ish", "--set", "garbage"])).is_err());
        assert!(eco(&c, &args(&["c880ish", "--set", "nosuchgate=OR"])).is_err());
        assert!(eco(&c, &args(&["c880ish", "--set", &format!("{gate_name}=FROB")])).is_err());
    }

    #[test]
    fn load_stat_flush_roundtrip() {
        let c = ctx();
        let out = load(&c, &args(&["s1"])).expect("load");
        assert!(out.contains("uid "), "{out}");
        assert!(out.contains("digest "), "{out}");
        let s = stat(&c);
        assert!(s.contains("1 circuit(s)"), "{s}");
        let f = flush(&c);
        assert!(f.contains("1 circuit(s)"), "{f}");
        let s = stat(&c);
        assert!(s.contains("0 circuit(s)"), "{s}");
    }

    #[test]
    fn uid_references_resolve_after_load() {
        let c = ctx();
        let out = load(&c, &args(&["s1"])).expect("load");
        let uid = c.registry().resolve("s1").expect("cached").circuit().uid();
        assert!(out.contains(&format!("uid {uid}")));
        let by_uid = stats(&c, &args(&[&format!("#{uid}")])).expect("stats by uid");
        assert!(by_uid.contains(&format!("uid: {uid}")));
        assert!(stats(&c, &args(&["#12345678901"])).is_err());
    }

    #[test]
    fn default_deadline_interrupts_a_served_style_request() {
        let c = ctx().with_default_deadline(Some(Duration::ZERO));
        // No --time-limit on the request: the context deadline applies
        // and the run reports a structured interruption.
        let out = simulate(&c, &args(&["c880ish", "--patterns", "4096"])).expect("interrupted ok");
        assert!(out.contains("interrupted"), "{out}");
        // An explicit flag overrides the default.
        let out = simulate(
            &c,
            &args(&["c880ish", "--patterns", "64", "--time-limit", "30"]),
        )
        .expect("runs");
        assert!(!out.contains("interrupted"), "{out}");
    }

    #[test]
    fn cancellation_flag_interrupts_with_a_structured_partial() {
        let cancel = Arc::new(AtomicBool::new(true));
        let c = ctx().with_cancel(Arc::clone(&cancel));
        let out = simulate(&c, &args(&["c880ish", "--patterns", "4096"])).expect("cancelled ok");
        assert!(out.contains("interrupted (cancelled)"), "{out}");
    }

    #[test]
    fn optimize_and_atpg_render_like_batch_mode() {
        let c = ctx();
        let out = optimize(&c, &args(&["s1"])).expect("optimize");
        assert!(out.contains("test length"), "{out}");
        let out = atpg(&c, &args(&["s1"])).expect("atpg");
        assert!(out.contains("tests generated"), "{out}");
    }
}

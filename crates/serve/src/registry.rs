//! Shared engine registry: circuits and cached COP baselines, keyed by
//! circuit uid.
//!
//! The registry is the server's long-lived state.  Every verb resolves
//! its circuit argument through [`Registry::resolve`], so repeated
//! requests — from one session or many — share one `Arc<Circuit>`, one
//! collapsed fault list, and one [`CopBaseline`] per distinct weight
//! vector.  The locks here guard only *lookups*; the expensive work
//! (parsing a netlist, the two COP passes) always runs outside them, so
//! concurrent sessions never serialize on a cache miss, let alone a hit.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use wrt_circuit::Circuit;
use wrt_estimate::{constant_line_faults, CopBaseline};
use wrt_fault::FaultList;

/// FNV-1a over the bit patterns of a weight vector — the baseline cache
/// key.  Collisions are guarded by an equality check on hit.
pub fn weight_key(weights: &[f64]) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for w in weights {
        for b in w.to_bits().to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
    }
    h
}

/// One registered circuit plus its lazily built, shareable derived state.
pub struct CircuitEntry {
    circuit: Arc<Circuit>,
    /// The experiment fault set (collapsed checkpoints minus exactly
    /// proven-redundant lines) used by estimate/optimize/simulate/eco.
    experiment_faults: OnceLock<Arc<FaultList>>,
    /// The collapsed checkpoint set ATPG works on.
    atpg_faults: OnceLock<Arc<FaultList>>,
    /// Weight-key → shared baseline.  The map lock is held only for
    /// lookup/insert; `CopBaseline::build` runs outside it.
    baselines: Mutex<HashMap<u64, Arc<CopBaseline>>>,
}

impl CircuitEntry {
    fn new(circuit: Circuit) -> Self {
        CircuitEntry {
            circuit: Arc::new(circuit),
            experiment_faults: OnceLock::new(),
            atpg_faults: OnceLock::new(),
            baselines: Mutex::new(HashMap::new()),
        }
    }

    /// The shared immutable circuit.
    pub fn circuit(&self) -> &Arc<Circuit> {
        &self.circuit
    }

    /// The experiment fault set (collapsed, redundancy-filtered), built
    /// once on first use.
    pub fn experiment_faults(&self) -> &Arc<FaultList> {
        self.experiment_faults.get_or_init(|| {
            let checkpoints =
                FaultList::checkpoints(&self.circuit).collapse_equivalent(&self.circuit);
            let redundant = constant_line_faults(&self.circuit, &checkpoints, 14);
            Arc::new(
                checkpoints
                    .iter()
                    .zip(&redundant)
                    .filter(|(_, &r)| !r)
                    .map(|((_, f), _)| f)
                    .collect(),
            )
        })
    }

    /// The collapsed checkpoint fault set (ATPG's working set), built
    /// once on first use.
    pub fn atpg_faults(&self) -> &Arc<FaultList> {
        self.atpg_faults.get_or_init(|| {
            Arc::new(FaultList::checkpoints(&self.circuit).collapse_equivalent(&self.circuit))
        })
    }

    fn cached_baseline(&self, key: u64, weights: &[f64]) -> Option<Arc<CopBaseline>> {
        let map = self.baselines.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        map.get(&key)
            .filter(|b| b.weights().as_ref() == weights)
            .map(Arc::clone)
    }
}

#[derive(Default)]
struct Index {
    by_uid: HashMap<u64, Arc<CircuitEntry>>,
    /// Workload name or file path → uid, so a repeated `<circuit>`
    /// argument resolves without re-parsing.
    by_source: HashMap<String, u64>,
}

/// Counters the `stat` verb reports.
#[derive(Debug, Default)]
struct Counters {
    resolves: AtomicU64,
    baseline_hits: AtomicU64,
    baseline_misses: AtomicU64,
}

/// The shared circuit/engine registry behind a resident server (or a
/// batch CLI process — both run the same verbs over the same registry
/// type, which is what keeps served and batch results bit-identical).
#[derive(Default)]
pub struct Registry {
    index: Mutex<Index>,
    counters: Counters,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// Resolves a `<circuit>` argument: `#<uid>` addresses an already
    /// registered circuit; anything else is tried as a workload name,
    /// then as a `.bench` file path, and the result is registered under
    /// its uid.  Loading happens outside the index lock.
    pub fn resolve(&self, arg: &str) -> Result<Arc<CircuitEntry>, String> {
        self.counters.resolves.fetch_add(1, Ordering::Relaxed);
        if let Some(raw) = arg.strip_prefix('#') {
            let uid: u64 = raw
                .parse()
                .map_err(|_| format!("`{arg}` is not a #<uid> circuit reference"))?;
            return self
                .lock_index()
                .by_uid
                .get(&uid)
                .map(Arc::clone)
                .ok_or_else(|| format!("no circuit with uid {uid} is loaded (try `load`)"));
        }
        {
            let index = self.lock_index();
            if let Some(&uid) = index.by_source.get(arg) {
                if let Some(entry) = index.by_uid.get(&uid) {
                    return Ok(Arc::clone(entry));
                }
            }
        }
        let circuit = load_circuit(arg)?;
        let entry = Arc::new(CircuitEntry::new(circuit));
        let uid = entry.circuit.uid();
        let mut index = self.lock_index();
        // Another session may have loaded the same source concurrently;
        // the first registration wins so every alias sees one uid.
        if let Some(&existing) = index.by_source.get(arg) {
            if let Some(existing_entry) = index.by_uid.get(&existing) {
                return Ok(Arc::clone(existing_entry));
            }
        }
        index.by_uid.insert(uid, Arc::clone(&entry));
        index.by_source.insert(arg.to_string(), uid);
        drop(index);
        Ok(entry)
    }

    /// The shared COP baseline for `entry` at `weights`: cached per
    /// weight vector, built outside the lock on a miss.  On a racing
    /// double build the first insert wins, so all sessions converge on
    /// one `Arc`.
    pub fn baseline(&self, entry: &CircuitEntry, weights: &[f64]) -> Arc<CopBaseline> {
        let key = weight_key(weights);
        if let Some(hit) = entry.cached_baseline(key, weights) {
            self.counters.baseline_hits.fetch_add(1, Ordering::Relaxed);
            return hit;
        }
        self.counters.baseline_misses.fetch_add(1, Ordering::Relaxed);
        let built = Arc::new(CopBaseline::build(Arc::clone(&entry.circuit), weights));
        let mut map = entry
            .baselines
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let winner = Arc::clone(map.entry(key).or_insert_with(|| Arc::clone(&built)));
        drop(map);
        // Hash collision between distinct weight vectors: serve the
        // correct baseline unshared rather than the colliding one.
        if winner.weights().as_ref() == weights {
            winner
        } else {
            built
        }
    }

    /// Drops every registered circuit and cached baseline, returning
    /// `(circuits, baselines)` dropped.
    pub fn flush(&self) -> (usize, usize) {
        let mut index = self.lock_index();
        let circuits = index.by_uid.len();
        let baselines = index
            .by_uid
            .values()
            .map(|e| {
                e.baselines
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .len()
            })
            .sum();
        index.by_uid.clear();
        index.by_source.clear();
        drop(index);
        (circuits, baselines)
    }

    /// Registered circuits as `(uid, name, nodes)`, sorted by uid.
    pub fn circuits(&self) -> Vec<(u64, String, usize)> {
        let index = self.lock_index();
        let mut rows: Vec<(u64, String, usize)> = index
            .by_uid
            .values()
            .map(|e| {
                (
                    e.circuit.uid(),
                    e.circuit.name().to_string(),
                    e.circuit.num_nodes(),
                )
            })
            .collect();
        drop(index);
        rows.sort();
        rows
    }

    /// Cached baselines across all entries.
    pub fn num_baselines(&self) -> usize {
        self.lock_index()
            .by_uid
            .values()
            .map(|e| {
                e.baselines
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .len()
            })
            .sum()
    }

    /// `(resolves, baseline hits, baseline misses)` since process start.
    pub fn counter_snapshot(&self) -> (u64, u64, u64) {
        (
            self.counters.resolves.load(Ordering::Relaxed),
            self.counters.baseline_hits.load(Ordering::Relaxed),
            self.counters.baseline_misses.load(Ordering::Relaxed),
        )
    }

    fn lock_index(&self) -> std::sync::MutexGuard<'_, Index> {
        self.index
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

/// Loads a circuit from a workload name or a `.bench` file path.
pub fn load_circuit(arg: &str) -> Result<Circuit, String> {
    if let Some(circuit) = wrt_workloads::by_name(arg) {
        return Ok(circuit);
    }
    let text = std::fs::read_to_string(arg)
        .map_err(|e| format!("`{arg}` is neither a workload name nor a readable file: {e}"))?;
    wrt_circuit::parse_bench_named(&text, arg).map_err(|e| format!("parsing `{arg}`: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolve_caches_by_source_and_uid() {
        let r = Registry::new();
        let a = r.resolve("s1").expect("workload");
        let b = r.resolve("s1").expect("workload again");
        assert!(Arc::ptr_eq(a.circuit(), b.circuit()), "one Arc per source");
        let by_uid = r
            .resolve(&format!("#{}", a.circuit().uid()))
            .expect("uid reference");
        assert!(Arc::ptr_eq(a.circuit(), by_uid.circuit()));
        assert!(r.resolve("#999999999").is_err());
        assert!(r.resolve("#notanumber").is_err());
        assert!(r.resolve("no-such-circuit-anywhere").is_err());
    }

    #[test]
    fn baselines_are_shared_per_weight_vector() {
        let r = Registry::new();
        let e = r.resolve("s1").expect("workload");
        let w1 = vec![0.5; e.circuit().num_inputs()];
        let w2 = vec![0.25; e.circuit().num_inputs()];
        let a = r.baseline(&e, &w1);
        let b = r.baseline(&e, &w1);
        let c = r.baseline(&e, &w2);
        assert!(Arc::ptr_eq(&a, &b), "same weights share one baseline");
        assert!(!Arc::ptr_eq(&a, &c), "different weights do not");
        let (_, hits, misses) = r.counter_snapshot();
        assert_eq!((hits, misses), (1, 2));
        assert_eq!(r.num_baselines(), 2);
        let (circuits, baselines) = r.flush();
        assert_eq!((circuits, baselines), (1, 2));
        assert!(r.circuits().is_empty());
    }

    #[test]
    fn fault_lists_build_once_and_are_shared() {
        let r = Registry::new();
        let e = r.resolve("s1").expect("workload");
        let f1 = Arc::clone(e.experiment_faults());
        let f2 = Arc::clone(e.experiment_faults());
        assert!(Arc::ptr_eq(&f1, &f2));
        assert!(e.atpg_faults().len() >= f1.len());
    }
}

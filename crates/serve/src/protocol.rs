//! The line protocol: one request line in, one counted frame out.
//!
//! A request is a single `\n`-terminated line whose whitespace-separated
//! tokens are exactly the batch CLI's argv (`estimate c880ish --top 3`).
//! A response is a header line — `ok <n>` or `err <n>` — followed by
//! exactly `n` payload lines.  The payload is the verb's rendered text
//! with its single trailing newline stripped and split on `\n`; the
//! receiver joins the lines back and re-appends the newline, so batch
//! and served output are byte-identical.
//!
//! Robustness rules, all structured (never a panic or a hang):
//! - a request line is capped at [`MAX_LINE`] bytes; an oversized line
//!   gets an `err` frame and the connection closes (the stream offset is
//!   no longer trustworthy),
//! - bytes that are not valid UTF-8 get an `err` frame and a close,
//! - reads are bounded by the socket's read timeout plus the session's
//!   idle callback, so a wedged peer cannot pin a thread forever.

use std::io::Read;

/// Upper bound on one request or response line, in bytes.
pub const MAX_LINE: usize = 64 * 1024;

/// Splits a request line into CLI argv tokens.
pub fn tokenize(line: &str) -> Vec<String> {
    line.split_whitespace().map(ToString::to_string).collect()
}

/// Renders a verb result as a counted frame, ready to write.
pub fn frame(result: &Result<String, String>) -> String {
    let (tag, payload) = match result {
        Ok(p) => ("ok", p.as_str()),
        Err(e) => ("err", e.as_str()),
    };
    let body = payload.strip_suffix('\n').unwrap_or(payload);
    let mut out = String::with_capacity(body.len() + 16);
    if body.is_empty() {
        out.push_str(tag);
        out.push_str(" 0\n");
    } else {
        let n = body.split('\n').count();
        out.push_str(tag);
        out.push(' ');
        out.push_str(&n.to_string());
        out.push('\n');
        out.push_str(body);
        out.push('\n');
    }
    out
}

/// Incremental, bounded, timeout-tolerant line reader over a socket (or
/// anything `Read`).  Leftover bytes after a `\n` are kept for the next
/// call, so pipelined requests on one connection parse correctly.
pub struct LineReader<R> {
    inner: R,
    buf: Vec<u8>,
    /// Set once the stream has reached EOF; later calls return `None`
    /// without touching the socket again.
    eof: bool,
}

impl<R: Read> LineReader<R> {
    pub fn new(inner: R) -> Self {
        LineReader {
            inner,
            buf: Vec::new(),
            eof: false,
        }
    }

    /// Reads the next line (without its terminator; a trailing `\r` is
    /// also stripped).  Returns `Ok(None)` at EOF.
    ///
    /// `on_idle` runs whenever a read times out — return `false` to
    /// abandon the wait (session shutdown, cancellation).
    ///
    /// # Errors
    ///
    /// Oversized lines, invalid UTF-8, abandoned waits, and transport
    /// failures are rendered messages; after any of them the stream
    /// offset is unreliable and the connection should close.
    pub fn read_line(&mut self, on_idle: &mut dyn FnMut() -> bool) -> Result<Option<String>, String> {
        loop {
            if let Some(pos) = self.buf.iter().position(|&b| b == b'\n') {
                // A line that arrived whole is still subject to the cap —
                // a single large read must not bypass it.
                if pos > MAX_LINE {
                    return Err(format!("line exceeds the {MAX_LINE} byte protocol cap"));
                }
                let mut line: Vec<u8> = self.buf.drain(..=pos).collect();
                line.pop(); // the \n
                if line.last() == Some(&b'\r') {
                    line.pop();
                }
                let line = String::from_utf8(line)
                    .map_err(|_| "request is not valid UTF-8".to_string())?;
                return Ok(Some(line));
            }
            if self.eof {
                // Unterminated trailing bytes still form a final line:
                // `printf 'stat' | nc` should work.
                if self.buf.is_empty() {
                    return Ok(None);
                }
                let line = String::from_utf8(std::mem::take(&mut self.buf))
                    .map_err(|_| "request is not valid UTF-8".to_string())?;
                return Ok(Some(line));
            }
            if self.buf.len() > MAX_LINE {
                return Err(format!("line exceeds the {MAX_LINE} byte protocol cap"));
            }
            let mut chunk = [0u8; 4096];
            match self.inner.read(&mut chunk) {
                Ok(0) => self.eof = true,
                Ok(n) => self.buf.extend_from_slice(&chunk[..n]),
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    if !on_idle() {
                        return Err("wait abandoned (session shutting down)".to_string());
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => return Err(format!("transport error: {e}")),
            }
        }
    }
}

/// Reads one counted response frame; the outer `Err` is a transport or
/// framing failure, the inner result mirrors the server's verb result.
///
/// # Errors
///
/// Malformed headers, truncated payloads, and transport failures.
pub fn read_response<R: Read>(
    reader: &mut LineReader<R>,
    on_idle: &mut dyn FnMut() -> bool,
) -> Result<Result<String, String>, String> {
    let header = reader
        .read_line(on_idle)?
        .ok_or_else(|| "connection closed before a response arrived".to_string())?;
    let (tag, count_raw) = header
        .split_once(' ')
        .ok_or_else(|| format!("malformed response header `{header}`"))?;
    let n: usize = count_raw
        .parse()
        .map_err(|_| format!("malformed response line count `{count_raw}`"))?;
    // A hostile or confused server cannot make us allocate unboundedly.
    if n > 1_000_000 {
        return Err(format!("response claims {n} lines; refusing"));
    }
    let mut payload = String::new();
    for _ in 0..n {
        let line = reader
            .read_line(on_idle)?
            .ok_or_else(|| "response truncated mid-payload".to_string())?;
        payload.push_str(&line);
        payload.push('\n');
    }
    match tag {
        "ok" => Ok(Ok(payload)),
        "err" => Ok(Err(payload)),
        other => Err(format!("malformed response tag `{other}`")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn always() -> impl FnMut() -> bool {
        || true
    }

    #[test]
    fn frame_counts_lines_and_roundtrips() {
        for case in [
            Ok("one\ntwo\n".to_string()),
            Ok(String::new()),
            Ok("no trailing newline".to_string()),
            Ok("blank\n\ninside\n".to_string()),
            Err("bad verb\nusage...\n".to_string()),
        ] {
            let encoded = frame(&case);
            let mut reader = LineReader::new(encoded.as_bytes());
            let decoded = read_response(&mut reader, &mut always()).expect("frames parse");
            let normalize = |s: &String| {
                let b = s.strip_suffix('\n').unwrap_or(s).to_string();
                if b.is_empty() {
                    String::new()
                } else {
                    format!("{b}\n")
                }
            };
            match (&case, &decoded) {
                (Ok(a), Ok(b)) | (Err(a), Err(b)) => assert_eq!(&normalize(a), b),
                other => panic!("tag flipped: {other:?}"),
            }
        }
    }

    #[test]
    fn reader_handles_pipelining_crlf_and_eof_tails() {
        let mut r = LineReader::new(&b"first\r\nsecond\nunterminated"[..]);
        assert_eq!(r.read_line(&mut always()).unwrap().as_deref(), Some("first"));
        assert_eq!(r.read_line(&mut always()).unwrap().as_deref(), Some("second"));
        assert_eq!(
            r.read_line(&mut always()).unwrap().as_deref(),
            Some("unterminated")
        );
        assert_eq!(r.read_line(&mut always()).unwrap(), None);
        assert_eq!(r.read_line(&mut always()).unwrap(), None, "EOF is sticky");
    }

    #[test]
    fn oversized_and_non_utf8_lines_are_structured_errors() {
        let big = vec![b'x'; MAX_LINE + 10];
        let mut r = LineReader::new(&big[..]);
        let err = r.read_line(&mut always()).unwrap_err();
        assert!(err.contains("byte protocol cap"), "{err}");

        let mut r = LineReader::new(&b"\xff\xfe garbage\n"[..]);
        let err = r.read_line(&mut always()).unwrap_err();
        assert!(err.contains("UTF-8"), "{err}");
    }

    #[test]
    fn hostile_line_counts_are_refused() {
        let mut r = LineReader::new(&b"ok 99999999999\n"[..]);
        assert!(read_response(&mut r, &mut always()).is_err());
        let mut r = LineReader::new(&b"ok two\nx\ny\n"[..]);
        assert!(read_response(&mut r, &mut always()).is_err());
        let mut r = LineReader::new(&b"yes 1\nx\n"[..]);
        assert!(read_response(&mut r, &mut always()).is_err());
        let mut r = LineReader::new(&b"ok 5\nx\n"[..]);
        let err = read_response(&mut r, &mut always()).unwrap_err();
        assert!(err.contains("truncated"), "{err}");
    }

    #[test]
    fn tokenize_is_the_cli_argv_split() {
        assert_eq!(
            tokenize("  estimate   c880ish --top 3 "),
            vec!["estimate", "c880ish", "--top", "3"]
        );
        assert!(tokenize("   ").is_empty());
    }
}

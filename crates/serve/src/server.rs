//! The resident server: thread-per-connection sessions over the line
//! protocol, all sharing one [`Registry`].
//!
//! Robustness contract, per request:
//! - every request runs under `catch_unwind`; a panicking handler yields
//!   an `err` frame and poisons at most its own session state — the
//!   registry and every other session keep serving,
//! - every budgeted request inherits the server's default deadline (its
//!   guard against runaway queries) unless it sets `--time-limit`,
//! - a client that disconnects mid-request raises the session's
//!   cancellation flag, so the abandoned computation exits through the
//!   structured `Interrupted` path instead of burning the thread,
//! - `shutdown` (and a Ctrl-C bridged by the CLI) stops the accept loop
//!   and wakes idle sessions, which drain within one poll interval.
//!
//! Fail-point sites `serve::accept`, `serve::session`, and
//! `serve::eco_apply` let the chaos harness inject faults at the accept
//! loop, the request dispatcher, and ECO application respectively.

use std::io::Write as _;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use wrt_robust::failpoint::{self, sites};

use crate::exec::{execute, ExecContext};
use crate::protocol::{frame, tokenize, LineReader};
use crate::registry::Registry;

/// How often an idle session re-checks the shutdown and cancel flags.
const POLL: Duration = Duration::from_millis(50);

/// A running server.  Dropping the handle shuts the server down and
/// joins every thread.
pub struct ServerHandle {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (useful with `--addr 127.0.0.1:0`).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Requests shutdown and wakes the accept loop.  Idempotent;
    /// returns immediately — use [`ServerHandle::wait`] to join.
    pub fn trigger_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // Self-connect so a blocked `accept` observes the flag.
        let _ = TcpStream::connect(self.addr);
    }

    /// Whether the accept loop has exited.
    pub fn finished(&self) -> bool {
        self.accept_thread.as_ref().is_none_or(JoinHandle::is_finished)
    }

    /// Blocks until the accept loop and every session have drained.
    pub fn wait(mut self) {
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.trigger_shutdown();
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

/// Binds `addr` and spawns the accept loop over `registry`.
///
/// # Errors
///
/// Only bind failures; everything after the bind is handled inside the
/// server threads.
pub fn spawn(
    registry: Arc<Registry>,
    addr: &str,
    default_deadline: Option<Duration>,
) -> Result<ServerHandle, String> {
    let listener = TcpListener::bind(addr).map_err(|e| format!("cannot bind `{addr}`: {e}"))?;
    let addr = listener
        .local_addr()
        .map_err(|e| format!("cannot read bound address: {e}"))?;
    let shutdown = Arc::new(AtomicBool::new(false));
    let accept_shutdown = Arc::clone(&shutdown);
    let accept_thread = std::thread::Builder::new()
        .name("wrt-serve-accept".into())
        .spawn(move || accept_loop(&listener, addr, &registry, default_deadline, &accept_shutdown))
        .map_err(|e| format!("cannot spawn accept thread: {e}"))?;
    Ok(ServerHandle {
        addr,
        shutdown,
        accept_thread: Some(accept_thread),
    })
}

fn accept_loop(
    listener: &TcpListener,
    addr: SocketAddr,
    registry: &Arc<Registry>,
    default_deadline: Option<Duration>,
    shutdown: &Arc<AtomicBool>,
) {
    let mut sessions: Vec<JoinHandle<()>> = Vec::new();
    loop {
        if shutdown.load(Ordering::SeqCst) {
            break;
        }
        let Ok((stream, _)) = listener.accept() else {
            // Transient accept failures (EMFILE, aborted handshakes)
            // must not kill the server.
            continue;
        };
        if shutdown.load(Ordering::SeqCst) {
            break; // the wake-up self-connection
        }
        if let Err(injected) = failpoint::hit(sites::SERVE_ACCEPT) {
            // Injected accept fault: degrade to refusing this one
            // connection with a structured error; the loop survives.
            let mut stream = stream;
            let _ = stream.write_all(frame(&Err(injected.to_string())).as_bytes());
            continue;
        }
        sessions.retain(|s| !s.is_finished());
        let registry = Arc::clone(registry);
        let shutdown = Arc::clone(shutdown);
        let spawned = std::thread::Builder::new()
            .name("wrt-serve-session".into())
            .spawn(move || session(stream, addr, &registry, default_deadline, &shutdown));
        // On spawn failure (thread exhaustion) the connection drops.
        if let Ok(handle) = spawned {
            sessions.push(handle);
        }
    }
    for s in sessions {
        let _ = s.join();
    }
}

/// Watches a cloned stream for client disconnect while the session
/// thread may be deep inside a long-running verb; EOF (or transport
/// failure, or server shutdown) raises the session's cancel flag so the
/// computation exits through its structured interrupt path.
fn watch_disconnect(
    stream: &TcpStream,
    cancel: &Arc<AtomicBool>,
    done: &Arc<AtomicBool>,
    shutdown: &Arc<AtomicBool>,
) {
    let _ = stream.set_read_timeout(Some(POLL));
    let mut byte = [0u8; 1];
    loop {
        if done.load(Ordering::SeqCst) {
            return;
        }
        if shutdown.load(Ordering::SeqCst) {
            cancel.store(true, Ordering::SeqCst);
            return;
        }
        // MSG_PEEK never consumes, so this cannot race the request
        // reader out of bytes.
        match stream.peek(&mut byte) {
            Ok(0) => {
                cancel.store(true, Ordering::SeqCst);
                return;
            }
            Ok(_) => std::thread::sleep(POLL), // a pipelined request is waiting
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut => {}
            Err(_) => {
                cancel.store(true, Ordering::SeqCst);
                return;
            }
        }
    }
}

fn session(
    stream: TcpStream,
    addr: SocketAddr,
    registry: &Arc<Registry>,
    default_deadline: Option<Duration>,
    shutdown: &Arc<AtomicBool>,
) {
    let cancel = Arc::new(AtomicBool::new(false));
    let done = Arc::new(AtomicBool::new(false));
    let watcher = stream.try_clone().ok().and_then(|ws| {
        let cancel = Arc::clone(&cancel);
        let done = Arc::clone(&done);
        let shutdown = Arc::clone(shutdown);
        std::thread::Builder::new()
            .name("wrt-serve-watch".into())
            .spawn(move || watch_disconnect(&ws, &cancel, &done, &shutdown))
            .ok()
    });

    let ctx = ExecContext::new(Arc::clone(registry))
        .with_default_deadline(default_deadline)
        .with_cancel(Arc::clone(&cancel));
    serve_session(&stream, addr, &ctx, shutdown, &cancel);

    done.store(true, Ordering::SeqCst);
    if let Some(w) = watcher {
        let _ = w.join();
    }
}

fn serve_session(
    stream: &TcpStream,
    addr: SocketAddr,
    ctx: &ExecContext,
    shutdown: &Arc<AtomicBool>,
    cancel: &Arc<AtomicBool>,
) {
    let _ = stream.set_read_timeout(Some(POLL));
    let mut reader = LineReader::new(stream);
    let mut writer = stream;
    let mut on_idle = {
        let shutdown = Arc::clone(shutdown);
        let cancel = Arc::clone(cancel);
        move || !shutdown.load(Ordering::SeqCst) && !cancel.load(Ordering::SeqCst)
    };
    loop {
        let line = match reader.read_line(&mut on_idle) {
            Ok(Some(line)) => line,
            Ok(None) => return, // clean EOF
            Err(e) => {
                // Oversized line, invalid UTF-8, abandoned wait: one
                // structured error, then close (the offset is gone).
                let _ = writer.write_all(frame(&Err(e)).as_bytes());
                return;
            }
        };
        let argv = tokenize(&line);
        if argv.is_empty() {
            continue; // blank keep-alive line
        }
        if argv[0] == "shutdown" {
            let _ = writer.write_all(frame(&Ok("shutting down\n".into())).as_bytes());
            shutdown.store(true, Ordering::SeqCst);
            let _ = TcpStream::connect(addr); // wake the accept loop
            return;
        }
        let result = match failpoint::hit(sites::SERVE_SESSION) {
            Err(injected) => Err(injected.to_string()),
            Ok(()) => catch_unwind(AssertUnwindSafe(|| execute(ctx, &argv))).unwrap_or_else(|_| {
                Err("internal panic while handling the request; this session's \
                     overlay state may be poisoned (reconnect to recover)"
                    .to_string())
            }),
        };
        if writer.write_all(frame(&result).as_bytes()).is_err() {
            return; // peer went away mid-response
        }
        let _ = writer.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client;

    fn strs(list: &[&str]) -> Vec<String> {
        list.iter().map(ToString::to_string).collect()
    }

    #[test]
    fn serves_requests_shares_state_and_shuts_down() {
        let registry = Arc::new(Registry::new());
        let handle = spawn(Arc::clone(&registry), "127.0.0.1:0", None).expect("bind");
        let addr = handle.addr().to_string();

        let out = client::run(&addr, &strs(&["load", "s1"])).expect("load");
        assert!(out.contains("uid "), "{out}");
        // Server-side state is the shared registry, visible across
        // connections.
        let stat = client::run(&addr, &strs(&["stat"])).expect("stat");
        assert!(stat.contains("1 circuit(s)"), "{stat}");
        assert_eq!(registry.circuits().len(), 1);

        // Verb errors arrive as err frames, not closed connections.
        let err = client::run(&addr, &strs(&["estimate", "no-such-circuit"])).unwrap_err();
        assert!(err.contains("neither a workload name"), "{err}");

        let bye = client::run(&addr, &strs(&["shutdown"])).expect("shutdown acked");
        assert!(bye.contains("shutting down"), "{bye}");
        for _ in 0..100 {
            if handle.finished() {
                break;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        assert!(handle.finished(), "accept loop must exit after shutdown");
        handle.wait();
        assert!(client::run(&addr, &strs(&["stat"])).is_err(), "server is gone");
    }

    #[test]
    fn served_results_are_bit_identical_to_direct_execution() {
        let registry = Arc::new(Registry::new());
        let handle = spawn(Arc::clone(&registry), "127.0.0.1:0", None).expect("bind");
        let addr = handle.addr().to_string();
        let ctx = ExecContext::new(Arc::clone(&registry));
        for argv in [
            strs(&["stats", "s1"]),
            strs(&["estimate", "s1", "--top", "3"]),
            strs(&["workloads"]),
            strs(&["analyze", "s1", "--json"]),
        ] {
            let direct = execute(&ctx, &argv).expect("direct");
            let served = client::run(&addr, &argv).expect("served");
            assert_eq!(direct, served, "divergence on {argv:?}");
        }
    }

    #[test]
    fn disconnect_mid_request_cancels_instead_of_pinning_the_thread() {
        let registry = Arc::new(Registry::new());
        let handle = spawn(Arc::clone(&registry), "127.0.0.1:0", None).expect("bind");
        // A deliberately huge simulation with no explicit budget...
        let mut stream = TcpStream::connect(handle.addr()).expect("connect");
        stream
            .write_all(b"simulate c2670ish --patterns 100000000\n")
            .expect("send");
        std::thread::sleep(Duration::from_millis(100));
        // ...whose client vanishes.  The watcher raises the cancel flag
        // and the session drains; shutdown then completes promptly,
        // which it could not if the computation ran to completion.
        drop(stream);
        handle.trigger_shutdown();
        let start = std::time::Instant::now();
        handle.wait();
        assert!(
            start.elapsed() < Duration::from_secs(30),
            "cancelled session took {:?} to drain",
            start.elapsed()
        );
    }
}

//! Testability-as-a-service: the resident `wrt serve` server, the shared
//! engine registry behind it, and the verb hub both it and the batch CLI
//! execute.
//!
//! The crate is layered so that "served" is a transport, not a fork of
//! the tool:
//!
//! - [`registry`] — long-lived shared state: circuits by uid, collapsed
//!   fault lists, and COP baselines cached per weight vector, all behind
//!   short lookup-only locks,
//! - [`exec`] — one function per verb, parsing CLI argv and rendering to
//!   a `String`; the batch CLI prints it, the server frames it,
//! - [`protocol`] — the line protocol (request = argv tokens on one
//!   line, response = `ok|err <n>` plus `n` payload lines) with bounded,
//!   timeout-tolerant reads,
//! - [`server`] — thread-per-connection sessions with panic isolation,
//!   default deadlines, and client-disconnect cancellation,
//! - [`client`] — the `wrt client` / `wrt --remote` sender.
//!
//! Because both paths run the *same* verb functions over the *same*
//! registry type, a served response is byte-identical to the batch CLI's
//! stdout for the same argv — enforced end to end by `bench_serve`.

pub mod client;
pub mod exec;
pub mod protocol;
pub mod registry;
pub mod server;

pub use exec::{execute, ExecContext, USAGE};
pub use registry::Registry;
pub use server::{spawn, ServerHandle};

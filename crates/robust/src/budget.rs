//! Cooperative computation budgets.
//!
//! A [`Budget`] bounds a long-running computation along four axes —
//! wall-clock deadline, canonical work units ("evals"), search backtracks,
//! and external cancellation — and is *checked in* cooperatively at
//! natural boundaries of the computation (pattern superblocks, optimizer
//! sweeps, PODEM faults).  A tripped budget never discards work: budgeted
//! entry points return a [`RunOutcome::Interrupted`] carrying the partial
//! result plus a [`Progress`] marker, so callers can checkpoint, report,
//! or resume.
//!
//! # Determinism contract
//!
//! The eval and backtrack axes are counted in machine-independent units,
//! and budgeted engines check them at deterministic boundaries, so an
//! interruption at the same budget value yields the *identical* partial
//! result across runs, thread counts, and hosts.  The deadline and
//! cancellation axes depend on wall clock and external timing and are
//! explicitly excluded from any bit-identity claim (the partial result is
//! still well-formed — it just covers a timing-dependent prefix of the
//! work).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::failpoint;

/// Why a budget check-in tripped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BudgetExceeded {
    /// The wall-clock deadline passed (timing-dependent; excluded from
    /// bit-identity claims).
    Deadline,
    /// The canonical eval budget is spent (deterministic).
    Evals,
    /// The backtrack budget is spent (deterministic).
    Backtracks,
    /// The cancellation flag was raised (timing-dependent).
    Cancelled,
    /// A fail-point injection forced the interrupt (chaos testing only;
    /// never occurs unless a [`failpoint`] session armed the
    /// `budget::check_in` site).
    Injected,
}

impl std::fmt::Display for BudgetExceeded {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BudgetExceeded::Deadline => write!(f, "wall-clock deadline reached"),
            BudgetExceeded::Evals => write!(f, "eval budget exhausted"),
            BudgetExceeded::Backtracks => write!(f, "backtrack budget exhausted"),
            BudgetExceeded::Cancelled => write!(f, "cancelled"),
            BudgetExceeded::Injected => write!(f, "fail-point injected interrupt"),
        }
    }
}

/// How far a computation got when it was interrupted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Progress {
    /// Work units completed (same unit as `total`).
    pub done: u64,
    /// Work units the full run would have performed, when known upfront.
    pub total: Option<u64>,
    /// Human-readable unit name (`"patterns"`, `"sweeps"`, `"faults"`).
    pub unit: &'static str,
}

impl std::fmt::Display for Progress {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.total {
            Some(total) => write!(f, "{}/{} {}", self.done, total, self.unit),
            None => write!(f, "{} {}", self.done, self.unit),
        }
    }
}

/// A budgeted computation's result: complete, or a structured partial.
#[derive(Debug, Clone)]
pub enum RunOutcome<T> {
    /// The computation ran to completion.
    Complete(T),
    /// A budget axis tripped; the work done so far is preserved.
    Interrupted {
        /// The well-formed partial result (covers `progress.done` units).
        partial: T,
        /// Which axis tripped.
        reason: BudgetExceeded,
        /// How far the computation got.
        progress: Progress,
    },
}

impl<T> RunOutcome<T> {
    /// Whether the computation ran to completion.
    pub fn is_complete(&self) -> bool {
        matches!(self, RunOutcome::Complete(_))
    }

    /// The (possibly partial) result.
    pub fn value(&self) -> &T {
        match self {
            RunOutcome::Complete(v) | RunOutcome::Interrupted { partial: v, .. } => v,
        }
    }

    /// Consumes the outcome, keeping the (possibly partial) result.
    pub fn into_value(self) -> T {
        match self {
            RunOutcome::Complete(v) | RunOutcome::Interrupted { partial: v, .. } => v,
        }
    }

    /// The interrupt reason, if the run was interrupted.
    pub fn interrupt_reason(&self) -> Option<BudgetExceeded> {
        match self {
            RunOutcome::Complete(_) => None,
            RunOutcome::Interrupted { reason, .. } => Some(*reason),
        }
    }

    /// Maps the carried result, preserving the completion status.
    pub fn map<U>(self, f: impl FnOnce(T) -> U) -> RunOutcome<U> {
        match self {
            RunOutcome::Complete(v) => RunOutcome::Complete(f(v)),
            RunOutcome::Interrupted {
                partial,
                reason,
                progress,
            } => RunOutcome::Interrupted {
                partial: f(partial),
                reason,
                progress,
            },
        }
    }
}

/// A cooperative budget for a long-running computation.
///
/// All axes are optional; [`Budget::unlimited`] never trips.  The budget
/// is immutable and shareable by reference; cancellation flows through a
/// shared [`AtomicBool`] so an external thread (a signal handler, a
/// server session) can raise it.
#[derive(Debug, Clone, Default)]
pub struct Budget {
    deadline: Option<Instant>,
    max_evals: Option<u64>,
    max_backtracks: Option<u64>,
    cancel: Option<Arc<AtomicBool>>,
}

impl Budget {
    /// A budget that never trips.
    pub fn unlimited() -> Self {
        Budget::default()
    }

    /// Adds a wall-clock deadline `limit` from now.  A zero duration
    /// deadline trips at the very first check-in: the run performs no
    /// budgeted work and returns an empty partial result.
    pub fn with_time_limit(mut self, limit: Duration) -> Self {
        self.deadline = Some(Instant::now() + limit);
        self
    }

    /// Adds a canonical eval budget.  Each budgeted subsystem documents
    /// its eval unit (the fault-simulation path counts one eval per node
    /// per pattern of fault-free simulation; the optimizer counts engine
    /// calls).
    pub fn with_max_evals(mut self, max_evals: u64) -> Self {
        self.max_evals = Some(max_evals);
        self
    }

    /// Adds a total backtrack budget (ATPG search effort).
    pub fn with_max_backtracks(mut self, max_backtracks: u64) -> Self {
        self.max_backtracks = Some(max_backtracks);
        self
    }

    /// Attaches a cancellation flag; raising it (store `true`) interrupts
    /// the computation at its next check-in.
    pub fn with_cancel(mut self, cancel: Arc<AtomicBool>) -> Self {
        self.cancel = Some(cancel);
        self
    }

    /// Creates and attaches a cancellation flag, returning it for the
    /// controlling thread to raise.
    pub fn cancel_token(&mut self) -> Arc<AtomicBool> {
        let token = Arc::new(AtomicBool::new(false));
        self.cancel = Some(Arc::clone(&token));
        token
    }

    /// The eval cap, if one is set.
    pub fn max_evals(&self) -> Option<u64> {
        self.max_evals
    }

    /// The backtrack cap, if one is set.
    pub fn max_backtracks(&self) -> Option<u64> {
        self.max_backtracks
    }

    /// Whether no axis is bounded (check-ins can be skipped wholesale).
    pub fn is_unlimited(&self) -> bool {
        self.deadline.is_none()
            && self.max_evals.is_none()
            && self.max_backtracks.is_none()
            && self.cancel.is_none()
            && !failpoint::any_armed()
    }

    /// One cooperative check-in: `evals` and `backtracks` are the
    /// cumulative deterministic counters of the computation so far.
    ///
    /// Deterministic axes (evals, backtracks) are checked before the
    /// timing-dependent ones (cancellation, deadline), so a run that
    /// trips a deterministic axis reports it consistently even under
    /// wall-clock pressure.
    ///
    /// # Errors
    ///
    /// Returns the first exceeded axis.
    pub fn check_in(&self, evals: u64, backtracks: u64) -> Result<(), BudgetExceeded> {
        if failpoint::hit(failpoint::sites::BUDGET_CHECK_IN).is_err() {
            return Err(BudgetExceeded::Injected);
        }
        if let Some(max) = self.max_evals {
            if evals >= max {
                return Err(BudgetExceeded::Evals);
            }
        }
        if let Some(max) = self.max_backtracks {
            if backtracks >= max {
                return Err(BudgetExceeded::Backtracks);
            }
        }
        if let Some(cancel) = &self.cancel {
            if cancel.load(Ordering::Relaxed) {
                return Err(BudgetExceeded::Cancelled);
            }
        }
        if let Some(deadline) = self.deadline {
            if Instant::now() >= deadline {
                return Err(BudgetExceeded::Deadline);
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_budget_never_trips() {
        let b = Budget::unlimited();
        assert!(b.is_unlimited());
        assert!(b.check_in(u64::MAX, u64::MAX).is_ok());
    }

    #[test]
    fn eval_budget_trips_at_the_cap() {
        let b = Budget::unlimited().with_max_evals(100);
        assert!(!b.is_unlimited());
        assert!(b.check_in(99, 0).is_ok());
        assert_eq!(b.check_in(100, 0), Err(BudgetExceeded::Evals));
        assert_eq!(b.check_in(u64::MAX, 0), Err(BudgetExceeded::Evals));
    }

    #[test]
    fn backtrack_budget_trips_at_the_cap() {
        let b = Budget::unlimited().with_max_backtracks(5);
        assert!(b.check_in(0, 4).is_ok());
        assert_eq!(b.check_in(0, 5), Err(BudgetExceeded::Backtracks));
    }

    #[test]
    fn zero_time_limit_trips_immediately() {
        let b = Budget::unlimited().with_time_limit(Duration::ZERO);
        assert_eq!(b.check_in(0, 0), Err(BudgetExceeded::Deadline));
    }

    #[test]
    fn generous_deadline_does_not_trip() {
        let b = Budget::unlimited().with_time_limit(Duration::from_secs(3600));
        assert!(b.check_in(0, 0).is_ok());
    }

    #[test]
    fn cancellation_flag_trips_on_raise() {
        let mut b = Budget::unlimited();
        let token = b.cancel_token();
        assert!(b.check_in(0, 0).is_ok());
        token.store(true, Ordering::Relaxed);
        assert_eq!(b.check_in(0, 0), Err(BudgetExceeded::Cancelled));
    }

    #[test]
    fn deterministic_axes_win_over_timing_axes() {
        // Evals and deadline both exceeded: the deterministic reason is
        // reported, so interrupted results stay reproducible.
        let b = Budget::unlimited()
            .with_max_evals(1)
            .with_time_limit(Duration::ZERO);
        assert_eq!(b.check_in(1, 0), Err(BudgetExceeded::Evals));
    }

    #[test]
    fn run_outcome_accessors() {
        let c: RunOutcome<u32> = RunOutcome::Complete(7);
        assert!(c.is_complete());
        assert_eq!(*c.value(), 7);
        assert_eq!(c.interrupt_reason(), None);
        let i = RunOutcome::Interrupted {
            partial: 3u32,
            reason: BudgetExceeded::Evals,
            progress: Progress {
                done: 3,
                total: Some(10),
                unit: "sweeps",
            },
        };
        assert!(!i.is_complete());
        assert_eq!(i.interrupt_reason(), Some(BudgetExceeded::Evals));
        let mapped = i.map(|x| x * 2);
        assert_eq!(mapped.into_value(), 6);
    }

    #[test]
    fn progress_formats_with_and_without_total() {
        let p = Progress {
            done: 3,
            total: Some(10),
            unit: "sweeps",
        };
        assert_eq!(p.to_string(), "3/10 sweeps");
        let q = Progress {
            done: 42,
            total: None,
            unit: "faults",
        };
        assert_eq!(q.to_string(), "42 faults");
    }
}

//! Run-to-completion resilience for long weighted-random-test runs.
//!
//! The optimizer descents, fault-coverage sweeps, and deterministic ATPG
//! passes this workspace runs are classic long-batch jobs: minutes to
//! hours of work whose value is destroyed by a single panicked worker, a
//! runaway search, or a killed process.  This crate supplies the four
//! resilience primitives the rest of the workspace threads through:
//!
//! * [`Budget`] / [`RunOutcome`] — cooperative bounds (deadline, canonical
//!   evals, backtracks, cancellation) whose interruptions carry the
//!   partial result and a [`Progress`] marker instead of discarding work
//!   ([`budget`] module).
//! * [`failpoint`] — a deterministic, seed-drivable fail-point registry
//!   (zero-cost when disabled) that chaos tests use to prove every
//!   recovery path actually recovers.
//! * [`Checkpoint`] — versioned, checksummed, bit-exact sidecar files for
//!   `--resume` ([`checkpoint`] module).
//! * [`Ladder`] / [`DegradeStep`] — the graceful-degradation record:
//!   which conservative fallbacks a run took and why ([`degrade`]
//!   module).
//!
//! The crate is deliberately leaf-level (no workspace dependencies), so
//! every other crate can use it without cycles.

#![forbid(unsafe_code)]

pub mod budget;
pub mod checkpoint;
pub mod degrade;
pub mod failpoint;

pub use budget::{Budget, BudgetExceeded, Progress, RunOutcome};
pub use checkpoint::{Checkpoint, CheckpointError, CHECKPOINT_VERSION};
pub use degrade::{DegradeStep, Ladder};
pub use failpoint::{FailAction, InjectedFailure};

//! Versioned checkpoint sidecar files.
//!
//! A checkpoint is a small, human-inspectable key/value file that lets a
//! long run survive interruption: the budgeted optimizer and ATPG drivers
//! write one when their budget trips, and `--resume` reads it back and
//! continues *bit-identically* to the uninterrupted run.
//!
//! # File format (version 1)
//!
//! ```text
//! wrt-checkpoint v1
//! kind=<subsystem kind, e.g. optimize>
//! <key>=<value>
//! ...
//! checksum=<16 hex digits: FNV-1a 64 over every preceding line>
//! ```
//!
//! * Line-based, UTF-8, `\n` separators; keys contain no `=` or newline,
//!   values no newline.
//! * **Bit-exact floats**: `f64` payloads are stored as the hex of
//!   [`f64::to_bits`], never as decimal — resume bit-identity must not
//!   depend on float formatting round-trips.
//! * **Tamper evidence**: the trailing FNV-1a checksum covers the header
//!   and every field line.  A truncated, merged, or hand-edited file
//!   fails [`CheckpointError::Corrupt`] instead of deserializing garbage.
//! * **Versioned**: a reader encountering any version other than
//!   [`CHECKPOINT_VERSION`] reports [`CheckpointError::VersionMismatch`]
//!   — it never guesses at a foreign layout.
//!
//! Writes go through a temporary file in the same directory followed by a
//! rename, so an interrupted write never leaves a half-written checkpoint
//! where a resume would find it.

use std::fmt;
use std::path::Path;

use crate::failpoint;

/// The checkpoint format version this build writes and reads.
pub const CHECKPOINT_VERSION: u32 = 1;

const MAGIC: &str = "wrt-checkpoint";

/// Error reading or writing a checkpoint file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckpointError {
    /// Filesystem failure (or an injected write failure in chaos tests).
    Io {
        /// The path involved.
        path: String,
        /// The underlying error message.
        message: String,
    },
    /// The file does not start with the checkpoint magic — not a
    /// checkpoint at all.
    BadMagic,
    /// The file is a checkpoint of an unsupported format version.
    VersionMismatch {
        /// The version the file declares.
        found: String,
    },
    /// The checkpoint belongs to a different subsystem.
    WrongKind {
        /// The kind the reader expected.
        expected: String,
        /// The kind the file declares.
        found: String,
    },
    /// Structural damage: bad checksum, truncation, malformed lines, or
    /// an undecodable field value.
    Corrupt {
        /// What exactly is damaged.
        reason: String,
    },
    /// A field the resuming subsystem requires is absent.
    MissingField(String),
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Io { path, message } => {
                write!(f, "checkpoint I/O on `{path}`: {message}")
            }
            CheckpointError::BadMagic => {
                write!(f, "not a checkpoint file (missing `{MAGIC}` header)")
            }
            CheckpointError::VersionMismatch { found } => write!(
                f,
                "checkpoint version `{found}` is not supported (this build reads v{CHECKPOINT_VERSION}); \
                 re-run without --resume to start fresh"
            ),
            CheckpointError::WrongKind { expected, found } => write!(
                f,
                "checkpoint kind `{found}` does not match the requested `{expected}` run"
            ),
            CheckpointError::Corrupt { reason } => {
                write!(f, "corrupt checkpoint: {reason}")
            }
            CheckpointError::MissingField(key) => {
                write!(f, "corrupt checkpoint: field `{key}` is missing")
            }
        }
    }
}

impl std::error::Error for CheckpointError {}

/// FNV-1a 64-bit, the tamper-evidence hash of the file format.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// An in-memory checkpoint: a kind tag plus ordered key/value fields.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Checkpoint {
    kind: String,
    fields: Vec<(String, String)>,
}

impl Checkpoint {
    /// Creates an empty checkpoint of the given subsystem kind.
    ///
    /// # Panics
    ///
    /// Panics if `kind` contains `=` or a newline.
    pub fn new(kind: &str) -> Self {
        assert!(
            !kind.contains('=') && !kind.contains('\n'),
            "checkpoint kind must be a bare token"
        );
        Checkpoint {
            kind: kind.to_string(),
            fields: Vec::new(),
        }
    }

    /// The subsystem kind this checkpoint belongs to.
    pub fn kind(&self) -> &str {
        &self.kind
    }

    /// Appends a field.
    ///
    /// # Panics
    ///
    /// Panics if `key` contains `=`/newline, if the value contains a
    /// newline, or if `key` collides with the reserved `checksum` field.
    pub fn put(&mut self, key: &str, value: impl fmt::Display) {
        let value = value.to_string();
        assert!(
            !key.is_empty() && !key.contains('=') && !key.contains('\n') && key != "checksum",
            "invalid checkpoint key `{key}`"
        );
        assert!(!value.contains('\n'), "checkpoint values are single-line");
        self.fields.push((key.to_string(), value));
    }

    /// Appends an `f64` bit-exactly (hex of [`f64::to_bits`]).
    pub fn put_f64_bits(&mut self, key: &str, value: f64) {
        self.put(key, format!("{:016x}", value.to_bits()));
    }

    /// Appends a slice of `f64`s bit-exactly (comma-joined bit hex).
    pub fn put_f64_slice_bits(&mut self, key: &str, values: &[f64]) {
        let joined: Vec<String> = values
            .iter()
            .map(|v| format!("{:016x}", v.to_bits()))
            .collect();
        self.put(key, joined.join(","));
    }

    /// Appends a slice of `u64`s (comma-joined decimal).
    pub fn put_u64_slice(&mut self, key: &str, values: &[u64]) {
        let joined: Vec<String> = values.iter().map(u64::to_string).collect();
        self.put(key, joined.join(","));
    }

    /// Records which circuit this checkpoint belongs to: the stable
    /// structural digest (identity across processes) and the
    /// process-local uid (for log correlation only — uids are assigned
    /// per process and never validated on resume).
    pub fn put_circuit_identity(&mut self, digest: u64, uid: u64) {
        self.put("circuit_digest", format!("{digest:016x}"));
        self.put("circuit_uid", uid);
    }

    /// Validates the recorded structural digest against the circuit a
    /// resume is targeting.  Checkpoints written before circuit identity
    /// was recorded carry no digest and pass unchecked.
    ///
    /// # Errors
    ///
    /// [`CheckpointError::Corrupt`] naming both digests when they
    /// disagree.
    pub fn validate_circuit_digest(&self, digest: u64) -> Result<(), CheckpointError> {
        if let Ok(recorded) = self.get("circuit_digest") {
            let expected = format!("{digest:016x}");
            if recorded != expected {
                return Err(CheckpointError::Corrupt {
                    reason: format!(
                        "checkpoint records circuit digest {recorded}, but this circuit's \
                         structural digest is {expected}; resume must target the same circuit"
                    ),
                });
            }
        }
        Ok(())
    }

    /// Looks up a field's raw value.
    ///
    /// # Errors
    ///
    /// [`CheckpointError::MissingField`] when the key is absent.
    pub fn get(&self, key: &str) -> Result<&str, CheckpointError> {
        self.fields
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
            .ok_or_else(|| CheckpointError::MissingField(key.to_string()))
    }

    /// Looks up and parses a field.
    ///
    /// # Errors
    ///
    /// [`CheckpointError::MissingField`] when absent,
    /// [`CheckpointError::Corrupt`] when unparsable.
    pub fn get_parse<T: std::str::FromStr>(&self, key: &str) -> Result<T, CheckpointError> {
        let raw = self.get(key)?;
        raw.parse().map_err(|_| CheckpointError::Corrupt {
            reason: format!("field `{key}` has undecodable value `{raw}`"),
        })
    }

    /// Looks up a bit-exact `f64` field.
    ///
    /// # Errors
    ///
    /// See [`Checkpoint::get_parse`].
    pub fn get_f64_bits(&self, key: &str) -> Result<f64, CheckpointError> {
        let raw = self.get(key)?;
        parse_f64_bits(raw).ok_or_else(|| CheckpointError::Corrupt {
            reason: format!("field `{key}` has undecodable f64 bits `{raw}`"),
        })
    }

    /// Looks up a bit-exact `f64` slice field (empty value = empty slice).
    ///
    /// # Errors
    ///
    /// See [`Checkpoint::get_parse`].
    pub fn get_f64_slice_bits(&self, key: &str) -> Result<Vec<f64>, CheckpointError> {
        let raw = self.get(key)?;
        if raw.is_empty() {
            return Ok(Vec::new());
        }
        raw.split(',')
            .map(|tok| {
                parse_f64_bits(tok).ok_or_else(|| CheckpointError::Corrupt {
                    reason: format!("field `{key}` has undecodable f64 bits `{tok}`"),
                })
            })
            .collect()
    }

    /// Looks up a `u64` slice field (empty value = empty slice).
    ///
    /// # Errors
    ///
    /// See [`Checkpoint::get_parse`].
    pub fn get_u64_slice(&self, key: &str) -> Result<Vec<u64>, CheckpointError> {
        let raw = self.get(key)?;
        if raw.is_empty() {
            return Ok(Vec::new());
        }
        raw.split(',')
            .map(|tok| {
                tok.parse().map_err(|_| CheckpointError::Corrupt {
                    reason: format!("field `{key}` has undecodable u64 `{tok}`"),
                })
            })
            .collect()
    }

    /// Renders the checkpoint to its on-disk text, checksum included.
    pub fn render(&self) -> String {
        let mut body = format!("{MAGIC} v{CHECKPOINT_VERSION}\nkind={}\n", self.kind);
        for (key, value) in &self.fields {
            body.push_str(key);
            body.push('=');
            body.push_str(value);
            body.push('\n');
        }
        let checksum = fnv1a(body.as_bytes());
        body.push_str(&format!("checksum={checksum:016x}\n"));
        body
    }

    /// Parses checkpoint text, validating magic, version, kind, and
    /// checksum.
    ///
    /// # Errors
    ///
    /// [`CheckpointError::BadMagic`], [`CheckpointError::VersionMismatch`],
    /// [`CheckpointError::WrongKind`], or [`CheckpointError::Corrupt`].
    pub fn parse(text: &str, expected_kind: &str) -> Result<Self, CheckpointError> {
        let mut lines = text.lines();
        let header = lines.next().unwrap_or("");
        let Some(version) = header.strip_prefix(MAGIC).map(str::trim) else {
            return Err(CheckpointError::BadMagic);
        };
        if version != format!("v{CHECKPOINT_VERSION}") {
            return Err(CheckpointError::VersionMismatch {
                found: version.to_string(),
            });
        }
        let mut fields: Vec<(String, String)> = Vec::new();
        let mut checksum: Option<String> = None;
        for line in lines {
            let Some((key, value)) = line.split_once('=') else {
                return Err(CheckpointError::Corrupt {
                    reason: format!("malformed line `{line}`"),
                });
            };
            if checksum.is_some() {
                return Err(CheckpointError::Corrupt {
                    reason: "fields after the checksum line".to_string(),
                });
            }
            if key == "checksum" {
                checksum = Some(value.to_string());
            } else {
                fields.push((key.to_string(), value.to_string()));
            }
        }
        let Some(recorded) = checksum else {
            return Err(CheckpointError::Corrupt {
                reason: "missing checksum line (truncated file)".to_string(),
            });
        };
        // Recompute over exactly what render() hashed.
        let mut body = format!("{header}\n");
        for (key, value) in &fields {
            body.push_str(key);
            body.push('=');
            body.push_str(value);
            body.push('\n');
        }
        let expected_sum = format!("{:016x}", fnv1a(body.as_bytes()));
        if recorded != expected_sum {
            return Err(CheckpointError::Corrupt {
                reason: format!("checksum mismatch (recorded {recorded}, computed {expected_sum})"),
            });
        }
        let kind_pos = fields.iter().position(|(k, _)| k == "kind");
        let Some(kind_pos) = kind_pos else {
            return Err(CheckpointError::Corrupt {
                reason: "missing kind line".to_string(),
            });
        };
        let (_, kind) = fields.remove(kind_pos);
        if kind != expected_kind {
            return Err(CheckpointError::WrongKind {
                expected: expected_kind.to_string(),
                found: kind,
            });
        }
        Ok(Checkpoint { kind, fields })
    }

    /// Writes the checkpoint atomically: render to `<path>.tmp`, then
    /// rename over `path`.
    ///
    /// # Errors
    ///
    /// [`CheckpointError::Io`] on any filesystem failure (or when the
    /// `checkpoint::write` fail point is armed).
    pub fn write_atomic(&self, path: &Path) -> Result<(), CheckpointError> {
        let io_err = |message: String| CheckpointError::Io {
            path: path.display().to_string(),
            message,
        };
        if let Err(e) = failpoint::hit(failpoint::sites::CHECKPOINT_WRITE) {
            return Err(io_err(e.to_string()));
        }
        let tmp = path.with_extension("tmp");
        std::fs::write(&tmp, self.render()).map_err(|e| io_err(e.to_string()))?;
        std::fs::rename(&tmp, path).map_err(|e| io_err(e.to_string()))
    }

    /// Reads and validates a checkpoint file.
    ///
    /// # Errors
    ///
    /// [`CheckpointError::Io`] when unreadable; otherwise every
    /// validation error [`Checkpoint::parse`] can produce.
    pub fn read(path: &Path, expected_kind: &str) -> Result<Self, CheckpointError> {
        let text = std::fs::read_to_string(path).map_err(|e| CheckpointError::Io {
            path: path.display().to_string(),
            message: e.to_string(),
        })?;
        Checkpoint::parse(&text, expected_kind)
    }
}

fn parse_f64_bits(tok: &str) -> Option<f64> {
    // Exactly 16 lowercase hex digits, as put_f64_bits writes.
    if tok.len() != 16 {
        return None;
    }
    u64::from_str_radix(tok, 16).ok().map(f64::from_bits)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Checkpoint {
        let mut c = Checkpoint::new("optimize");
        c.put("sweep", 7u64);
        c.put_f64_bits("best_length", 1234.5678e12);
        c.put_f64_slice_bits("weights", &[0.25, 0.5, f64::MIN_POSITIVE, 1.0 - 1e-16]);
        c.put_u64_slice("excluded", &[3, 17, 99]);
        c.put("empty", "");
        c
    }

    #[test]
    fn round_trip_is_bit_exact() {
        let c = sample();
        let text = c.render();
        let back = Checkpoint::parse(&text, "optimize").expect("parses");
        assert_eq!(back, c);
        assert_eq!(back.get_parse::<u64>("sweep").unwrap(), 7);
        assert_eq!(
            back.get_f64_bits("best_length").unwrap().to_bits(),
            (1234.5678e12f64).to_bits()
        );
        let ws = back.get_f64_slice_bits("weights").unwrap();
        assert_eq!(ws[2].to_bits(), f64::MIN_POSITIVE.to_bits());
        assert_eq!(back.get_u64_slice("excluded").unwrap(), vec![3, 17, 99]);
        assert_eq!(back.get_f64_slice_bits("empty").unwrap(), Vec::<f64>::new());
    }

    #[test]
    fn nan_and_infinity_survive_bit_exactly() {
        // Decimal formatting could never round-trip these; the bit
        // encoding must.
        let mut c = Checkpoint::new("t");
        let weird = f64::from_bits(0x7FF8_0000_0000_0001); // a specific NaN
        c.put_f64_slice_bits("xs", &[f64::INFINITY, f64::NEG_INFINITY, weird, -0.0]);
        let back = Checkpoint::parse(&c.render(), "t").unwrap();
        let xs = back.get_f64_slice_bits("xs").unwrap();
        assert_eq!(xs[0], f64::INFINITY);
        assert_eq!(xs[1], f64::NEG_INFINITY);
        assert_eq!(xs[2].to_bits(), 0x7FF8_0000_0000_0001);
        assert_eq!(xs[3].to_bits(), (-0.0f64).to_bits());
    }

    #[test]
    fn bad_magic_is_detected() {
        assert_eq!(
            Checkpoint::parse("hello world\n", "optimize"),
            Err(CheckpointError::BadMagic)
        );
        assert_eq!(
            Checkpoint::parse("", "optimize"),
            Err(CheckpointError::BadMagic)
        );
    }

    #[test]
    fn version_mismatch_is_detected_not_guessed() {
        let text = sample().render().replace("v1", "v2");
        match Checkpoint::parse(&text, "optimize") {
            Err(CheckpointError::VersionMismatch { found }) => assert_eq!(found, "v2"),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn wrong_kind_is_detected() {
        let text = sample().render();
        match Checkpoint::parse(&text, "atpg") {
            Err(CheckpointError::WrongKind { expected, found }) => {
                assert_eq!(expected, "atpg");
                assert_eq!(found, "optimize");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn any_single_byte_flip_in_a_value_is_detected() {
        let text = sample().render();
        // Flip the sweep count: checksum must catch it.
        let tampered = text.replace("sweep=7", "sweep=8");
        assert!(matches!(
            Checkpoint::parse(&tampered, "optimize"),
            Err(CheckpointError::Corrupt { .. })
        ));
    }

    #[test]
    fn truncation_is_detected() {
        let text = sample().render();
        // Drop the checksum line entirely.
        let mut truncated = String::new();
        for line in text.lines().take_while(|l| !l.starts_with("checksum=")) {
            truncated.push_str(line);
            truncated.push('\n');
        }
        assert!(matches!(
            Checkpoint::parse(&truncated, "optimize"),
            Err(CheckpointError::Corrupt { .. })
        ));
        // Garbage line without '='.
        let garbled = text.replace("sweep=7", "sweep 7");
        assert!(matches!(
            Checkpoint::parse(&garbled, "optimize"),
            Err(CheckpointError::Corrupt { .. })
        ));
    }

    #[test]
    fn missing_and_undecodable_fields_are_structured_errors() {
        let c = sample();
        assert_eq!(
            c.get("nope"),
            Err(CheckpointError::MissingField("nope".to_string()))
        );
        assert!(matches!(
            c.get_parse::<u64>("empty"),
            Err(CheckpointError::Corrupt { .. })
        ));
        let mut bad = Checkpoint::new("t");
        bad.put("x", "zz");
        assert!(matches!(
            bad.get_f64_bits("x"),
            Err(CheckpointError::Corrupt { .. })
        ));
    }

    #[test]
    fn atomic_write_and_read_round_trip() {
        let dir = std::env::temp_dir().join("wrt_robust_ckpt_test");
        std::fs::create_dir_all(&dir).expect("tmp dir");
        let path = dir.join("run.ckpt");
        let c = sample();
        c.write_atomic(&path).expect("writes");
        let back = Checkpoint::read(&path, "optimize").expect("reads");
        assert_eq!(back, c);
        // The temporary never survives a successful write.
        assert!(!path.with_extension("tmp").exists());
        let missing = dir.join("never-written.ckpt");
        assert!(matches!(
            Checkpoint::read(&missing, "optimize"),
            Err(CheckpointError::Io { .. })
        ));
    }

    #[test]
    fn circuit_identity_round_trips_and_gates_resume() {
        let mut c = Checkpoint::new("optimize");
        c.put_circuit_identity(0xDEAD_BEEF, 7);
        assert_eq!(c.get("circuit_digest").unwrap(), "00000000deadbeef");
        assert_eq!(c.get("circuit_uid").unwrap(), "7");
        assert!(c.validate_circuit_digest(0xDEAD_BEEF).is_ok());
        match c.validate_circuit_digest(0xFEED) {
            Err(CheckpointError::Corrupt { reason }) => {
                assert!(reason.contains("00000000deadbeef"));
                assert!(reason.contains("000000000000feed"));
            }
            other => panic!("{other:?}"),
        }
        // Pre-identity checkpoints carry no digest and pass unchecked.
        assert!(Checkpoint::new("optimize").validate_circuit_digest(1).is_ok());
    }

    #[test]
    fn injected_write_failure_is_a_structured_io_error() {
        let dir = std::env::temp_dir().join("wrt_robust_ckpt_inject");
        std::fs::create_dir_all(&dir).expect("tmp dir");
        let path = dir.join("run.ckpt");
        let s = crate::failpoint::session();
        s.arm("checkpoint::write", crate::failpoint::FailAction::Error, 0);
        match sample().write_atomic(&path) {
            Err(CheckpointError::Io { message, .. }) => {
                assert!(message.contains("checkpoint::write"));
            }
            other => panic!("{other:?}"),
        }
        drop(s);
        // With the arm spent, the same write succeeds.
        sample().write_atomic(&path).expect("writes after injection");
    }
}

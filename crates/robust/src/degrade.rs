//! The graceful-degradation ladder.
//!
//! When a subsystem detects an anomaly — a panicked shard, an aborted
//! guided ATPG search, a non-finite incremental estimate — it does not
//! abort the run.  It steps down one rung of a fixed ladder to a simpler,
//! more conservative strategy and records the step, so the run completes
//! (possibly slower) and the report says exactly what was degraded and
//! why.
//!
//! The rungs, per subsystem:
//!
//! | subsystem | preferred           | fallback            |
//! |-----------|---------------------|---------------------|
//! | sim       | event-driven engine | dense engine        |
//! | sim       | sharded worklist    | serial shard replay |
//! | atpg      | guided PODEM        | unguided PODEM      |
//! | estimate  | incremental COP     | stateless COP       |
//!
//! Every fallback preserves the bit-identity contract: the dense engine,
//! serial replay, and stateless COP produce the same results as their
//! preferred counterparts (that equivalence is property-tested
//! elsewhere), so stepping down trades only speed, never correctness.

use std::fmt;

/// One rung stepped down the degradation ladder.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DegradeStep {
    /// ATPG retried an aborted fault with guidance disabled.
    GuidedToUnguided,
    /// Fault simulation fell back from the event-driven to the dense
    /// engine (e.g. while replaying a poisoned shard).
    EventToDense,
    /// Detection-probability estimation fell back from the incremental
    /// overlay engine to stateless full recomputation.
    IncrementalToStateless,
    /// A panicked shard's fault worklist was requeued for serial replay.
    ShardRequeue,
}

impl DegradeStep {
    /// Stable machine-readable name (used in reports and bench JSON).
    pub fn name(self) -> &'static str {
        match self {
            DegradeStep::GuidedToUnguided => "guided_to_unguided",
            DegradeStep::EventToDense => "event_to_dense",
            DegradeStep::IncrementalToStateless => "incremental_to_stateless",
            DegradeStep::ShardRequeue => "shard_requeue",
        }
    }
}

impl fmt::Display for DegradeStep {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DegradeStep::GuidedToUnguided => write!(f, "guided PODEM -> unguided PODEM"),
            DegradeStep::EventToDense => write!(f, "event engine -> dense engine"),
            DegradeStep::IncrementalToStateless => {
                write!(f, "incremental COP -> stateless COP")
            }
            DegradeStep::ShardRequeue => write!(f, "sharded worklist -> serial replay"),
        }
    }
}

/// An append-only record of the degradation steps a run took, with the
/// anomaly that triggered each.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Ladder {
    steps: Vec<(DegradeStep, String)>,
}

impl Ladder {
    /// An empty ladder (nothing degraded).
    pub fn new() -> Self {
        Ladder::default()
    }

    /// Records one step down, with the anomaly that triggered it.
    pub fn record(&mut self, step: DegradeStep, trigger: impl Into<String>) {
        self.steps.push((step, trigger.into()));
    }

    /// Whether the run completed without degrading anything.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// Number of steps taken.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// The recorded steps in order, with their triggers.
    pub fn steps(&self) -> &[(DegradeStep, String)] {
        &self.steps
    }

    /// How many times a particular rung was stepped.
    pub fn count(&self, step: DegradeStep) -> usize {
        self.steps.iter().filter(|(s, _)| *s == step).count()
    }

    /// Merges another ladder's steps after this one's (shard merge).
    pub fn merge(&mut self, other: Ladder) {
        self.steps.extend(other.steps);
    }
}

impl fmt::Display for Ladder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.steps.is_empty() {
            return write!(f, "no degradation");
        }
        for (i, (step, trigger)) in self.steps.iter().enumerate() {
            if i > 0 {
                writeln!(f)?;
            }
            write!(f, "{step} ({trigger})")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_ladder_reports_no_degradation() {
        let l = Ladder::new();
        assert!(l.is_empty());
        assert_eq!(l.len(), 0);
        assert_eq!(l.to_string(), "no degradation");
    }

    #[test]
    fn records_and_counts_steps_in_order() {
        let mut l = Ladder::new();
        l.record(DegradeStep::ShardRequeue, "shard 3 worker panicked");
        l.record(DegradeStep::EventToDense, "shard 3 replay retry 2");
        l.record(DegradeStep::ShardRequeue, "shard 5 worker panicked");
        assert_eq!(l.len(), 3);
        assert_eq!(l.count(DegradeStep::ShardRequeue), 2);
        assert_eq!(l.count(DegradeStep::EventToDense), 1);
        assert_eq!(l.count(DegradeStep::GuidedToUnguided), 0);
        assert_eq!(l.steps()[0].1, "shard 3 worker panicked");
    }

    #[test]
    fn merge_appends_in_order() {
        let mut a = Ladder::new();
        a.record(DegradeStep::GuidedToUnguided, "fault 7 aborted");
        let mut b = Ladder::new();
        b.record(DegradeStep::IncrementalToStateless, "non-finite estimate");
        a.merge(b);
        assert_eq!(a.len(), 2);
        assert_eq!(a.steps()[1].0, DegradeStep::IncrementalToStateless);
    }

    #[test]
    fn names_are_stable_tokens() {
        for step in [
            DegradeStep::GuidedToUnguided,
            DegradeStep::EventToDense,
            DegradeStep::IncrementalToStateless,
            DegradeStep::ShardRequeue,
        ] {
            let name = step.name();
            assert!(name.chars().all(|c| c.is_ascii_lowercase() || c == '_'));
        }
    }

    #[test]
    fn display_lists_each_step_with_trigger() {
        let mut l = Ladder::new();
        l.record(DegradeStep::EventToDense, "why");
        let s = l.to_string();
        assert!(s.contains("dense engine"));
        assert!(s.contains("why"));
    }
}

//! Deterministic fail-point injection.
//!
//! A *fail point* is a named site planted in production code — worker
//! spawn, shard merge, checkpoint write, budget check-in — that normally
//! does nothing, but can be *armed* by a chaos test to fire exactly once
//! after a chosen number of passes, either panicking (to exercise panic
//! isolation) or returning a structured [`InjectedFailure`] (to exercise
//! error paths).  Arming is explicit and seed-derivable, so every chaos
//! scenario is reproducible.
//!
//! # Cost when disabled
//!
//! The disabled fast path is one relaxed atomic load of a counter that is
//! zero outside of an active [`Session`] — no lock, no allocation, no
//! branch beyond the comparison.  Production runs never arm sites, so the
//! planted points are free in every benchmarked configuration.
//!
//! # Process-global state
//!
//! The registry is process-global (the sites it guards live across crate
//! boundaries), so concurrent chaos tests would interfere.  [`session`]
//! serializes them: it holds a global lock for the session's lifetime and
//! clears all arms and counters on drop.  Keep chaos tests in a dedicated
//! integration-test binary so they never share a process with unrelated
//! tests.

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock, PoisonError};

/// A structured failure returned by a fired fail point armed with
/// [`FailAction::Error`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InjectedFailure {
    /// The site that fired.
    pub site: String,
}

impl std::fmt::Display for InjectedFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "fail-point `{}` injected a failure", self.site)
    }
}

impl std::error::Error for InjectedFailure {}

/// What an armed fail point does when it fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailAction {
    /// Panic at the site (exercises panic isolation and recovery).
    Panic,
    /// Return an [`InjectedFailure`] from [`hit`] (exercises structured
    /// error paths).
    Error,
}

struct Arm {
    action: FailAction,
    /// Passes to let through before firing.
    skip: u64,
}

#[derive(Default)]
struct Registry {
    arms: HashMap<String, Arm>,
    hits: HashMap<String, u64>,
    fired: Vec<String>,
    recording: bool,
}

/// Number of currently armed sites plus one per recording session: the
/// disabled fast path in [`hit`] is a single relaxed load of this.
static ACTIVE: AtomicUsize = AtomicUsize::new(0);

fn registry() -> &'static Mutex<Registry> {
    static REGISTRY: OnceLock<Mutex<Registry>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(Registry::default()))
}

fn lock() -> MutexGuard<'static, Registry> {
    // A panic while holding the lock is part of normal chaos-test flow
    // (FailAction::Panic fires inside `hit`); the registry state itself
    // stays consistent, so poisoning is ignored.
    registry().lock().unwrap_or_else(PoisonError::into_inner)
}

/// Whether any fail-point session is active (armed sites or recording).
pub fn any_armed() -> bool {
    ACTIVE.load(Ordering::Relaxed) != 0
}

/// Passes through the fail point `site`.
///
/// With no active session this is one relaxed atomic load.  Inside a
/// session, the pass is counted; if `site` is armed and its skip count is
/// spent, the arm fires exactly once — panicking or returning the
/// structured failure per its [`FailAction`].
///
/// # Errors
///
/// Returns [`InjectedFailure`] when an [`FailAction::Error`] arm fires.
///
/// # Panics
///
/// Panics when a [`FailAction::Panic`] arm fires.
pub fn hit(site: &str) -> Result<(), InjectedFailure> {
    if ACTIVE.load(Ordering::Relaxed) == 0 {
        return Ok(());
    }
    hit_slow(site)
}

#[cold]
fn hit_slow(site: &str) -> Result<(), InjectedFailure> {
    let mut reg = lock();
    if reg.recording {
        *reg.hits.entry(site.to_string()).or_insert(0) += 1;
    }
    let fire = match reg.arms.get_mut(site) {
        None => None,
        Some(arm) if arm.skip > 0 => {
            arm.skip -= 1;
            None
        }
        Some(arm) => {
            let action = arm.action;
            reg.arms.remove(site);
            reg.fired.push(site.to_string());
            ACTIVE.fetch_sub(1, Ordering::Relaxed);
            Some(action)
        }
    };
    drop(reg);
    match fire {
        None => Ok(()),
        Some(FailAction::Error) => Err(InjectedFailure {
            site: site.to_string(),
        }),
        Some(FailAction::Panic) => panic!("fail-point `{site}` injected a panic"),
    }
}

/// Passes through the fail point `site`, checking every armed site.  Use
/// `wrt_robust::failpoint!("crate::site")` at plant sites; the expression
/// evaluates to `Result<(), InjectedFailure>`.
#[macro_export]
macro_rules! failpoint {
    ($site:expr) => {
        $crate::failpoint::hit($site)
    };
}

/// The well-known fail-point sites planted across the workspace.  Chaos
/// suites iterate this vocabulary; plant sites reference these constants
/// so arming and planting can never drift apart.
pub mod sites {
    /// Start of a sharded fault-simulation worker (worker thread).
    pub const WORKER_SPAWN: &str = "shard::spawn";
    /// Per-shard result merge on the coordinating thread.
    pub const SHARD_MERGE: &str = "shard::merge";
    /// Atomic checkpoint write.
    pub const CHECKPOINT_WRITE: &str = "checkpoint::write";
    /// Cooperative budget check-in.
    pub const BUDGET_CHECK_IN: &str = "budget::check_in";
    /// Detection-probability estimate anomaly (degradation-ladder drill).
    pub const ESTIMATE_ANOMALY: &str = "estimate::anomaly";
    /// Start of one fault-shard × pattern-stripe tile in the 2D engine.
    pub const TILE_RUN: &str = "tile::run";
    /// One accepted connection in the `wrt serve` accept loop.
    pub const SERVE_ACCEPT: &str = "serve::accept";
    /// One request dispatch inside a `wrt serve` session handler.
    pub const SERVE_SESSION: &str = "serve::session";
    /// Application of a what-if ECO overlay to a served baseline.
    pub const SERVE_ECO_APPLY: &str = "serve::eco_apply";

    /// Every planted site, for seed-driven chaos iteration.
    pub const ALL: [&str; 9] = [
        WORKER_SPAWN,
        SHARD_MERGE,
        CHECKPOINT_WRITE,
        BUDGET_CHECK_IN,
        ESTIMATE_ANOMALY,
        TILE_RUN,
        SERVE_ACCEPT,
        SERVE_SESSION,
        SERVE_ECO_APPLY,
    ];
}

fn test_lock() -> &'static Mutex<()> {
    static TEST_LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    TEST_LOCK.get_or_init(|| Mutex::new(()))
}

/// An exclusive fail-point session: arms fire only while it lives, and
/// everything is cleared when it drops.
pub struct Session {
    _exclusive: MutexGuard<'static, ()>,
}

/// Opens an exclusive session: clears the registry, enables pass
/// recording, and serializes against every other session in the process.
pub fn session() -> Session {
    let exclusive = test_lock().lock().unwrap_or_else(PoisonError::into_inner);
    let mut reg = lock();
    *reg = Registry {
        recording: true,
        ..Registry::default()
    };
    drop(reg);
    // Replace any stale arm count with exactly 1 (the recording flag).
    ACTIVE.store(1, Ordering::Relaxed);
    Session {
        _exclusive: exclusive,
    }
}

impl Session {
    /// Arms `site` to fire once with `action` after letting `skip`
    /// passes through.
    pub fn arm(&self, site: &str, action: FailAction, skip: u64) {
        let mut reg = lock();
        if reg
            .arms
            .insert(site.to_string(), Arm { action, skip })
            .is_none()
        {
            ACTIVE.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Number of passes `site` has seen during this session (fired or
    /// not) — the harness uses this to prove every planted site is
    /// actually exercised by the workload.
    pub fn hits(&self, site: &str) -> u64 {
        lock().hits.get(site).copied().unwrap_or(0)
    }

    /// Sites whose arm fired during this session.
    pub fn fired(&self) -> Vec<String> {
        lock().fired.clone()
    }

    /// Sites still armed (their skip count outlived the workload).
    pub fn still_armed(&self) -> Vec<String> {
        let mut sites: Vec<String> = lock().arms.keys().cloned().collect();
        sites.sort();
        sites
    }
}

impl Drop for Session {
    fn drop(&mut self) {
        let mut reg = lock();
        *reg = Registry::default();
        drop(reg);
        ACTIVE.store(0, Ordering::Relaxed);
    }
}

/// Derives a deterministic `(site_index, skip)` pair from `seed` — the
/// standard way chaos suites turn one seed into one injection plan.
///
/// `max_skip` bounds the skip count (use a value on the order of how
/// often the site fires in the workload, so injections land both early
/// and late).
pub fn seeded_plan(seed: u64, num_sites: usize, max_skip: u64) -> (usize, u64) {
    // SplitMix64: decorrelates consecutive seeds.
    let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    let site = (z as usize) % num_sites.max(1);
    let skip = (z >> 33) % max_skip.max(1);
    (site, skip)
}

#[cfg(test)]
// `Session`'s Drop is the teardown under test; "tighten" suggestions that
// would drop it earlier change the semantics being asserted.
#[allow(clippy::significant_drop_tightening)]
mod tests {
    use super::*;

    #[test]
    fn disabled_hit_is_ok_and_free() {
        // Hold the session lock without opening a session, so no other
        // test can arm anything while we observe the disabled state.
        let _guard = test_lock().lock().unwrap_or_else(PoisonError::into_inner);
        assert!(hit("nowhere").is_ok());
        assert!(!any_armed());
    }

    #[test]
    fn error_arm_fires_once_after_skip() {
        let s = session();
        s.arm("x", FailAction::Error, 2);
        assert!(hit("x").is_ok());
        assert!(hit("x").is_ok());
        let err = hit("x").expect_err("third pass fires");
        assert_eq!(err.site, "x");
        // One-shot: the arm is spent.
        assert!(hit("x").is_ok());
        assert_eq!(s.hits("x"), 4);
        assert_eq!(s.fired(), vec!["x".to_string()]);
    }

    #[test]
    fn panic_arm_panics_and_registry_survives() {
        let s = session();
        s.arm("boom", FailAction::Panic, 0);
        let result = std::panic::catch_unwind(|| hit("boom"));
        assert!(result.is_err(), "panic arm must panic");
        // The registry is still usable and the arm is spent.
        assert!(hit("boom").is_ok());
        assert_eq!(s.fired(), vec!["boom".to_string()]);
    }

    #[test]
    fn session_drop_clears_everything() {
        {
            let s = session();
            s.arm("leftover", FailAction::Error, 100);
            assert!(any_armed());
        }
        // Re-acquire the lock so the disabled-state observation cannot
        // race another test opening its own session.
        let _guard = test_lock().lock().unwrap_or_else(PoisonError::into_inner);
        assert!(!any_armed());
        assert!(hit("leftover").is_ok());
    }

    #[test]
    fn unfired_arms_are_reported() {
        let s = session();
        s.arm("never-reached", FailAction::Error, 1_000);
        assert_eq!(s.still_armed(), vec!["never-reached".to_string()]);
    }

    #[test]
    fn macro_form_expands_to_hit() {
        let s = session();
        s.arm("macro-site", FailAction::Error, 0);
        let r: Result<(), InjectedFailure> = crate::failpoint!("macro-site");
        assert!(r.is_err());
        drop(s);
    }

    #[test]
    fn seeded_plans_are_deterministic_and_in_range() {
        for seed in 0..200 {
            let (site, skip) = seeded_plan(seed, 4, 10);
            assert!(site < 4);
            assert!(skip < 10);
            assert_eq!((site, skip), seeded_plan(seed, 4, 10));
        }
        // Degenerate parameters never divide by zero.
        assert_eq!(seeded_plan(1, 0, 0).0, 0);
    }
}

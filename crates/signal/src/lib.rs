//! SIGINT-to-`AtomicBool` bridge for cooperative cancellation.
//!
//! The workspace's long-running commands (`optimize`, `simulate`, `atpg`,
//! `serve`) are budgeted and check a shared cancellation flag at natural
//! boundaries ([`wrt_robust::Budget::with_cancel`]).  This crate turns the
//! user's Ctrl-C into that flag: [`ctrl_c_flag`] installs a SIGINT handler
//! once and returns the `Arc<AtomicBool>` it raises, so an interrupted run
//! exits through the structured `Interrupted` path (partial result +
//! checkpoint) instead of being killed mid-write.
//!
//! A *second* Ctrl-C kills the process: the handler re-installs the
//! default disposition after raising the flag, so a hung or very coarse
//! computation can still be terminated forcibly.
//!
//! This is the only crate in the workspace allowed to contain `unsafe`
//! code (one audited `signal(2)` FFI declaration); everything else is
//! built under `unsafe_code = "forbid"`.  The handler body is
//! async-signal-safe: one atomic store plus one `signal(2)` call.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, OnceLock};

static FLAG: OnceLock<Arc<AtomicBool>> = OnceLock::new();

#[cfg(unix)]
mod imp {
    use super::{Ordering, FLAG};

    pub const SIGINT: i32 = 2;
    const SIG_DFL: usize = 0;

    extern "C" {
        /// POSIX `signal(2)`.  Used instead of `sigaction` to keep the
        /// declaration to one line with no struct layout to get wrong;
        /// on Linux glibc this is the BSD (non-resetting) semantics, and
        /// the handler resets the disposition itself.
        fn signal(signum: i32, handler: usize) -> usize;
    }

    extern "C" fn on_sigint(_signum: i32) {
        // Async-signal-safe: `OnceLock::get` on an initialized cell is a
        // lock-free load (initialization happened before `install`), and
        // the store is a plain atomic.
        if let Some(flag) = FLAG.get() {
            flag.store(true, Ordering::SeqCst);
        }
        // One shot: restore the default disposition so a second Ctrl-C
        // terminates the process the ordinary way.
        unsafe {
            signal(SIGINT, SIG_DFL);
        }
    }

    pub fn install() {
        unsafe {
            signal(SIGINT, on_sigint as extern "C" fn(i32) as usize);
        }
    }
}

#[cfg(not(unix))]
mod imp {
    /// No signal wiring off Unix: the flag is still returned (callers can
    /// raise it programmatically) but Ctrl-C keeps its default behavior.
    pub fn install() {}
}

/// Returns the process-wide cancellation flag, installing the SIGINT
/// handler on first call.
///
/// The same `Arc` is returned on every call, so independent subsystems
/// (a budgeted run and a server accept loop, say) all observe the same
/// Ctrl-C.  The flag is never reset: one interrupt cancels everything
/// attached to it for the remainder of the process.
pub fn ctrl_c_flag() -> Arc<AtomicBool> {
    static INSTALLED: AtomicBool = AtomicBool::new(false);
    let flag = FLAG.get_or_init(|| Arc::new(AtomicBool::new(false)));
    if INSTALLED
        .compare_exchange(false, true, Ordering::SeqCst, Ordering::SeqCst)
        .is_ok()
    {
        imp::install();
    }
    Arc::clone(flag)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flag_is_a_singleton_and_starts_lowered() {
        let a = ctrl_c_flag();
        let b = ctrl_c_flag();
        assert!(Arc::ptr_eq(&a, &b));
        // Other tests in this binary may have raised it; raising is
        // idempotent and never resets, so only check the type contract
        // when this test runs first.
        if !a.load(Ordering::SeqCst) {
            a.store(false, Ordering::SeqCst);
        }
    }

    #[cfg(unix)]
    #[test]
    fn sigint_raises_the_flag_instead_of_killing() {
        let flag = ctrl_c_flag();
        // Deliver a real SIGINT to this process via kill(1); if the
        // handler were not installed the default disposition would
        // terminate the test run outright.
        let pid = std::process::id().to_string();
        let status = std::process::Command::new("kill")
            .args(["-INT", &pid])
            .status();
        let Ok(status) = status else {
            eprintln!("kill(1) unavailable; skipping signal delivery check");
            return;
        };
        assert!(status.success(), "kill -INT failed");
        // Signal delivery is asynchronous; poll briefly.
        for _ in 0..200 {
            if flag.load(Ordering::SeqCst) {
                return;
            }
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
        panic!("SIGINT did not raise the cancellation flag");
    }
}

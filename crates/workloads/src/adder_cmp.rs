//! Adder/comparator datapaths standing in for C2670 and C7552.
//!
//! The published root cause of C2670's and C7552's extreme random-pattern
//! resistance is wide-support comparison and detection logic: equality
//! comparators and all-ones detectors whose output is 1 with probability
//! `2^-width` under equiprobable patterns.  This generator combines a
//! ripple adder datapath with exactly such logic.

use wrt_circuit::{Circuit, CircuitBuilder, GateKind, NodeId};

use crate::cells::{and_tree, equality, mux2, ripple_adder, xor_tree};

/// `width`-bit adder + `eq_width`-bit comparator/detector datapath.
///
/// Inputs: `A*`/`B*` (adder operands, `width` bits each), `X*`/`Y*`
/// (comparator operands, `eq_width` bits each), `SEL` (result mux control)
/// and `CIN`.
///
/// Outputs: the `width`-bit result `F*` (sum or `A XOR B` selected by
/// `SEL`), `COUT`, `PAR` (parity of the result), `XEQY` (wide equality —
/// detection probability `2^-eq_width`), and `ALL1` (all-ones detect over
/// `X`, probability `2^-eq_width`).
///
/// # Panics
///
/// Panics if `width == 0` or `eq_width == 0`.
pub fn adder_comparator(width: usize, eq_width: usize) -> Circuit {
    assert!(width > 0 && eq_width > 0, "widths must be positive");
    let mut b = CircuitBuilder::named(format!("addcmp{width}_{eq_width}"));
    let a: Vec<NodeId> = (0..width).map(|i| b.input(format!("A{i}"))).collect();
    let bb: Vec<NodeId> = (0..width).map(|i| b.input(format!("B{i}"))).collect();
    let x: Vec<NodeId> = (0..eq_width).map(|i| b.input(format!("X{i}"))).collect();
    let y: Vec<NodeId> = (0..eq_width).map(|i| b.input(format!("Y{i}"))).collect();
    let sel = b.input("SEL");
    let cin = b.input("CIN");

    let (sums, cout) = ripple_adder(&mut b, &a, &bb, cin);
    let mut result = Vec::with_capacity(width);
    for i in 0..width {
        let x_i = b.xor2(a[i], bb[i]).expect("valid fanin");
        let f = mux2(&mut b, sel, sums[i], x_i);
        let named = b.gate(GateKind::Buf, format!("F{i}"), &[f]).expect("valid fanin");
        result.push(named);
    }
    for &f in &result {
        b.mark_output(f);
    }
    let cout_named = b.gate(GateKind::Buf, "COUT", &[cout]).expect("valid fanin");
    b.mark_output(cout_named);
    let par = xor_tree(&mut b, &result);
    let par_named = b.gate(GateKind::Buf, "PAR", &[par]).expect("valid fanin");
    b.mark_output(par_named);

    // The random-pattern-resistant part.
    let eq = equality(&mut b, &x, &y);
    let eq_named = b.gate(GateKind::Buf, "XEQY", &[eq]).expect("valid fanin");
    b.mark_output(eq_named);
    let all1 = and_tree(&mut b, &x);
    let all1_named = b.gate(GateKind::Buf, "ALL1", &[all1]).expect("valid fanin");
    b.mark_output(all1_named);

    b.build().expect("generator produces valid circuits")
}

/// C2670 analogue: 12-bit adder with a 20-bit comparator section
/// (hardest faults around `2^-20`, matching C2670's 1.1·10⁷ conventional
/// test length scale).
pub fn c2670ish() -> Circuit {
    crate::comparator::rename(adder_comparator(12, 20), "c2670ish")
}

/// C7552 analogue: 32-bit adder with a 32-bit comparator section
/// (hardest faults around `2^-32`, matching C7552's 4.9·10¹¹ scale).
pub fn c7552ish() -> Circuit {
    crate::comparator::rename(adder_comparator(32, 32), "c7552ish")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn eval(c: &Circuit, assignment: &[bool]) -> Vec<bool> {
        let mut values = vec![false; c.num_nodes()];
        let mut buf = Vec::new();
        for (id, node) in c.iter() {
            values[id.index()] = match node.kind() {
                GateKind::Input => assignment[c.input_position(id).expect("pi")],
                kind => {
                    buf.clear();
                    buf.extend(node.fanin().iter().map(|f| values[f.index()]));
                    kind.eval(&buf)
                }
            };
        }
        c.outputs().iter().map(|&o| values[o.index()]).collect()
    }

    #[allow(clippy::too_many_arguments)] // direct mirror of the circuit's operand pins
    fn run(
        c: &Circuit,
        width: usize,
        eq_width: usize,
        a: u64,
        b: u64,
        x: u64,
        y: u64,
        sel: bool,
    ) -> (u64, bool, bool) {
        let mut assignment = Vec::new();
        for i in 0..width {
            assignment.push((a >> i) & 1 == 1);
        }
        for i in 0..width {
            assignment.push((b >> i) & 1 == 1);
        }
        for i in 0..eq_width {
            assignment.push((x >> i) & 1 == 1);
        }
        for i in 0..eq_width {
            assignment.push((y >> i) & 1 == 1);
        }
        assignment.push(sel);
        assignment.push(false); // CIN
        let out = eval(c, &assignment);
        let mut f = 0u64;
        for (i, &bit) in out.iter().enumerate().take(width) {
            if bit {
                f |= 1 << i;
            }
        }
        // outputs: F*, COUT, PAR, XEQY, ALL1
        (f, out[width + 2], out[width + 3])
    }

    #[test]
    fn sum_and_xor_paths() {
        let c = adder_comparator(8, 4);
        let (f, _, _) = run(&c, 8, 4, 100, 55, 0, 0, false);
        assert_eq!(f, 155);
        let (f, _, _) = run(&c, 8, 4, 0xAA, 0x0F, 0, 0, true);
        assert_eq!(f, 0xAA ^ 0x0F);
    }

    #[test]
    fn equality_and_all_ones_flags() {
        let c = adder_comparator(4, 6);
        let (_, eq, all1) = run(&c, 4, 6, 0, 0, 0x2A, 0x2A, false);
        assert!(eq);
        assert!(!all1);
        let (_, eq, all1) = run(&c, 4, 6, 0, 0, 0x3F, 0x00, false);
        assert!(!eq);
        assert!(all1);
    }

    #[test]
    fn family_shapes() {
        let c2670 = c2670ish();
        assert_eq!(c2670.num_inputs(), 12 * 2 + 20 * 2 + 2);
        let c7552 = c7552ish();
        assert_eq!(c7552.num_inputs(), 32 * 2 + 32 * 2 + 2);
        assert!(c7552.num_gates() > c2670.num_gates());
    }
}

//! Priority/interrupt controller standing in for C432.
//!
//! C432 is a 27-channel interrupt controller: requests are gated by enables
//! and arbitrated by priority, with encoded outputs.  The deep OR-inhibit
//! chain gives it moderate random-pattern resistance.

use wrt_circuit::{Circuit, CircuitBuilder, GateKind, NodeId};

use crate::cells::{or_tree, xor_tree};

/// `channels`-channel priority interrupt controller.
///
/// Inputs: `R0..R<channels-1>` request lines and `E0..` enable lines (one
/// enable gates a group of three consecutive channels, as in C432's bus
/// structure).  Channel `channels-1` has the highest priority.
///
/// Outputs: `GRANT` (any channel granted), an encoded channel index
/// `IDX0..` (OR trees over granted lines), and `PAR` (parity over the
/// masked requests).
///
/// # Panics
///
/// Panics if `channels == 0`.
pub fn priority_interrupt(channels: usize) -> Circuit {
    assert!(channels > 0, "need at least one channel");
    let groups = channels.div_ceil(3);
    let mut b = CircuitBuilder::named(format!("pint{channels}"));
    let requests: Vec<NodeId> = (0..channels).map(|i| b.input(format!("R{i}"))).collect();
    let enables: Vec<NodeId> = (0..groups).map(|g| b.input(format!("E{g}"))).collect();

    // Masked requests.
    let masked: Vec<NodeId> = requests
        .iter()
        .enumerate()
        .map(|(i, &r)| b.and2(r, enables[i / 3]).expect("valid fanin"))
        .collect();

    // Priority chain: channel i granted iff masked_i and no higher masked
    // request.  `inhibit` accumulates the OR of higher channels.
    let mut grant = vec![None::<NodeId>; channels];
    let mut inhibit: Option<NodeId> = None;
    for i in (0..channels).rev() {
        grant[i] = Some(match inhibit {
            None => masked[i],
            Some(inh) => {
                let ninh = b.not(inh).expect("valid fanin");
                b.and2(masked[i], ninh).expect("valid fanin")
            }
        });
        inhibit = Some(match inhibit {
            None => masked[i],
            Some(inh) => b.or2(inh, masked[i]).expect("valid fanin"),
        });
    }
    let grant: Vec<NodeId> = grant.into_iter().map(|g| g.expect("filled")).collect();

    // Encoded index: bit j = OR of grant lines whose channel has bit j set.
    let idx_bits = usize::BITS as usize - (channels - 1).leading_zeros() as usize;
    for j in 0..idx_bits.max(1) {
        let leaves: Vec<NodeId> = grant
            .iter()
            .enumerate()
            .filter(|(i, _)| i >> j & 1 == 1)
            .map(|(_, &g)| g)
            .collect();
        let bit = if leaves.is_empty() {
            b.const0()
        } else {
            or_tree(&mut b, &leaves)
        };
        let out = b
            .gate(GateKind::Buf, format!("IDX{j}"), &[bit])
            .expect("valid fanin");
        b.mark_output(out);
    }
    let any = or_tree(&mut b, &masked);
    let any_named = b.gate(GateKind::Buf, "GRANT", &[any]).expect("valid fanin");
    b.mark_output(any_named);
    let par = xor_tree(&mut b, &masked);
    let par_named = b.gate(GateKind::Buf, "PAR", &[par]).expect("valid fanin");
    b.mark_output(par_named);
    wrt_circuit::simplify(&b.build().expect("generator produces valid circuits"))
}

/// C432 analogue: 27-channel controller (27 requests + 9 enables = 36
/// inputs, matching C432's interface width).
pub fn c432ish() -> Circuit {
    crate::comparator::rename(priority_interrupt(27), "c432ish")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn eval(c: &Circuit, assignment: &[bool]) -> Vec<bool> {
        let mut values = vec![false; c.num_nodes()];
        let mut buf = Vec::new();
        for (id, node) in c.iter() {
            values[id.index()] = match node.kind() {
                GateKind::Input => assignment[c.input_position(id).expect("pi")],
                kind => {
                    buf.clear();
                    buf.extend(node.fanin().iter().map(|f| values[f.index()]));
                    kind.eval(&buf)
                }
            };
        }
        c.outputs().iter().map(|&o| values[o.index()]).collect()
    }

    fn run(c: &Circuit, channels: usize, requests: u64, enables: u64) -> (Option<usize>, bool) {
        let groups = channels.div_ceil(3);
        let mut assignment: Vec<bool> = (0..channels).map(|i| (requests >> i) & 1 == 1).collect();
        assignment.extend((0..groups).map(|g| (enables >> g) & 1 == 1));
        let out = eval(c, &assignment);
        let idx_bits = usize::BITS as usize - (channels - 1).leading_zeros() as usize;
        let granted = out[idx_bits]; // GRANT follows the index bits
        if !granted {
            return (None, out[idx_bits + 1]);
        }
        let mut idx = 0usize;
        for (j, &bit) in out.iter().enumerate().take(idx_bits) {
            if bit {
                idx |= 1 << j;
            }
        }
        (Some(idx), out[idx_bits + 1])
    }

    #[test]
    fn highest_enabled_request_wins() {
        let channels = 9;
        let c = priority_interrupt(channels);
        // Requests on 2 and 7, all enabled: 7 wins.
        let (idx, _) = run(&c, channels, (1 << 2) | (1 << 7), 0b111);
        assert_eq!(idx, Some(7));
        // Disable 7's group (channels 6..8 = group 2): 2 wins.
        let (idx, _) = run(&c, channels, (1 << 2) | (1 << 7), 0b011);
        assert_eq!(idx, Some(2));
    }

    #[test]
    fn no_request_no_grant() {
        let channels = 9;
        let c = priority_interrupt(channels);
        let (idx, par) = run(&c, channels, 0, 0b111);
        assert_eq!(idx, None);
        assert!(!par);
    }

    #[test]
    fn parity_counts_masked_requests() {
        let channels = 9;
        let c = priority_interrupt(channels);
        let (_, par) = run(&c, channels, 0b000000111, 0b001); // 3 masked
        assert!(par);
        let (_, par) = run(&c, channels, 0b000000011, 0b001); // 2 masked
        assert!(!par);
    }

    #[test]
    fn c432ish_shape() {
        let c = c432ish();
        assert_eq!(c.num_inputs(), 36);
        assert!(c.num_outputs() >= 7);
        assert!(c.num_gates() > 100, "got {}", c.num_gates());
    }
}

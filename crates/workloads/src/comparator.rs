//! The paper's S1: a 24-bit magnitude comparator built from six cascaded
//! TI SN7485 4-bit comparators, with the redundancies induced by the
//! tied-off cascade pins of the lowest cell removed (the paper notes
//! "where some redundancies are removed").

use wrt_circuit::{simplify, Circuit, CircuitBuilder, GateKind, NodeId};

use crate::cells::and_tree;

/// Instantiates one SN7485 4-bit magnitude comparator.
///
/// `a` and `b` are the 4-bit operands with index 0 = LSB; `gt_in`,
/// `lt_in`, `eq_in` are the cascade inputs from the next-lower slice.
/// Returns `(a_gt_b, a_lt_b, a_eq_b)`.
///
/// The gate network follows the TTL Data Book \[TI80\]: per-bit equality
/// via XNOR, then sum-of-products priority terms for the `>` and `<`
/// outputs and an AND for the `=` output.
pub fn sn7485(
    b: &mut CircuitBuilder,
    a_bits: [NodeId; 4],
    b_bits: [NodeId; 4],
    gt_in: NodeId,
    lt_in: NodeId,
    eq_in: NodeId,
) -> (NodeId, NodeId, NodeId) {
    // Per-bit equality, MSB = index 3.
    let eq: Vec<NodeId> = (0..4)
        .map(|i| {
            b.gate_auto(GateKind::Xnor, &[a_bits[i], b_bits[i]])
                .expect("valid fanin")
        })
        .collect();
    let nb: Vec<NodeId> = (0..4).map(|i| b.not(b_bits[i]).expect("valid fanin")).collect();
    let na: Vec<NodeId> = (0..4).map(|i| b.not(a_bits[i]).expect("valid fanin")).collect();

    // A>B terms, highest bit first: a3 b̄3, e3 a2 b̄2, e3 e2 a1 b̄1,
    // e3 e2 e1 a0 b̄0, e3 e2 e1 e0 · GTin.
    let mut gt_terms = Vec::new();
    let mut lt_terms = Vec::new();
    for i in (0..4).rev() {
        let mut gt_fan = vec![a_bits[i], nb[i]];
        let mut lt_fan = vec![na[i], b_bits[i]];
        for &e in eq.iter().skip(i + 1) {
            gt_fan.push(e);
            lt_fan.push(e);
        }
        gt_terms.push(b.gate_auto(GateKind::And, &gt_fan).expect("valid fanin"));
        lt_terms.push(b.gate_auto(GateKind::And, &lt_fan).expect("valid fanin"));
    }
    let all_eq = and_tree(b, &eq);
    let gt_cascade = b.and2(all_eq, gt_in).expect("valid fanin");
    let lt_cascade = b.and2(all_eq, lt_in).expect("valid fanin");
    gt_terms.push(gt_cascade);
    lt_terms.push(lt_cascade);

    let a_gt_b = b.gate_auto(GateKind::Or, &gt_terms).expect("valid fanin");
    let a_lt_b = b.gate_auto(GateKind::Or, &lt_terms).expect("valid fanin");
    let a_eq_b = b.and2(all_eq, eq_in).expect("valid fanin");
    (a_gt_b, a_lt_b, a_eq_b)
}

/// A `width`-bit magnitude comparator built from cascaded SN7485 cells.
///
/// Inputs are named `A0..A<width-1>` (LSB first) and likewise `B*`;
/// outputs are `AGTB`, `ALTB`, `AEQB`.  The lowest cell's cascade pins are
/// tied to `(0, 0, 1)` per the datasheet's single-word usage, and the
/// resulting constant logic is folded away with [`simplify`].
///
/// # Panics
///
/// Panics if `width` is zero or not a multiple of 4.
pub fn comparator(width: usize) -> Circuit {
    assert!(width > 0 && width.is_multiple_of(4), "width must be a positive multiple of 4");
    let mut b = CircuitBuilder::named(format!("cmp{width}"));
    let a_in: Vec<NodeId> = (0..width).map(|i| b.input(format!("A{i}"))).collect();
    let b_in: Vec<NodeId> = (0..width).map(|i| b.input(format!("B{i}"))).collect();
    let mut gt = b.const0();
    let mut lt = b.const0();
    let mut eq = b.const1();
    for slice in 0..width / 4 {
        let base = slice * 4;
        let a4 = [a_in[base], a_in[base + 1], a_in[base + 2], a_in[base + 3]];
        let b4 = [b_in[base], b_in[base + 1], b_in[base + 2], b_in[base + 3]];
        let (g, l, e) = sn7485(&mut b, a4, b4, gt, lt, eq);
        gt = g;
        lt = l;
        eq = e;
    }
    let gt_named = b.gate(GateKind::Buf, "AGTB", &[gt]).expect("valid fanin");
    let lt_named = b.gate(GateKind::Buf, "ALTB", &[lt]).expect("valid fanin");
    let eq_named = b.gate(GateKind::Buf, "AEQB", &[eq]).expect("valid fanin");
    b.mark_output(gt_named);
    b.mark_output(lt_named);
    b.mark_output(eq_named);
    simplify(&b.build().expect("generator produces valid circuits"))
}

/// The paper's S1: `comparator(24)` (six SN7485s, redundancies removed).
///
/// Its `AEQB` output is 1 with probability `2^-24` under equiprobable
/// random patterns — the root cause of the 5.6·10⁸ conventional test
/// length in Table 1.
pub fn s1() -> Circuit {
    let mut c = comparator(24);
    // Rename for reporting.
    c = rename(c, "s1");
    c
}

pub(crate) fn rename(c: Circuit, name: &str) -> Circuit {
    // Circuits are immutable; rebuild with the new name via bench roundtrip
    // would be wasteful.  Use the parser-independent path: serialize is
    // unnecessary — Circuit has no rename API by design, so we rebuild
    // through the builder.
    let mut b = CircuitBuilder::named(name);
    let mut map = vec![None; c.num_nodes()];
    for (id, node) in c.iter() {
        let new = match node.kind() {
            wrt_circuit::GateKind::Input => b.input(node.name()),
            kind => {
                let fanin: Vec<NodeId> = node
                    .fanin()
                    .iter()
                    .map(|f| map[f.index()].expect("topological order"))
                    .collect();
                b.gate(kind, node.name(), &fanin)
                    .expect("copy of valid circuit")
            }
        };
        map[id.index()] = Some(new);
    }
    for &o in c.outputs() {
        b.mark_output(map[o.index()].expect("outputs exist"));
    }
    b.build().expect("copy of valid circuit")
}

#[cfg(test)]
mod tests {
    use super::*;
    use wrt_circuit::GateKind;

    fn eval(c: &Circuit, assignment: &[bool]) -> Vec<bool> {
        let mut values = vec![false; c.num_nodes()];
        let mut buf = Vec::new();
        for (id, node) in c.iter() {
            values[id.index()] = match node.kind() {
                GateKind::Input => assignment[c.input_position(id).expect("pi")],
                kind => {
                    buf.clear();
                    buf.extend(node.fanin().iter().map(|f| values[f.index()]));
                    kind.eval(&buf)
                }
            };
        }
        c.outputs().iter().map(|&o| values[o.index()]).collect()
    }

    fn compare_words(c: &Circuit, width: usize, a: u64, b: u64) -> (bool, bool, bool) {
        let mut assignment = Vec::new();
        for i in 0..width {
            assignment.push((a >> i) & 1 == 1);
        }
        for i in 0..width {
            assignment.push((b >> i) & 1 == 1);
        }
        let out = eval(c, &assignment);
        (out[0], out[1], out[2])
    }

    #[test]
    fn four_bit_cell_is_a_correct_comparator() {
        let c = comparator(4);
        for a in 0..16u64 {
            for b in 0..16u64 {
                let (gt, lt, eq) = compare_words(&c, 4, a, b);
                assert_eq!(gt, a > b, "{a} > {b}");
                assert_eq!(lt, a < b, "{a} < {b}");
                assert_eq!(eq, a == b, "{a} == {b}");
            }
        }
    }

    #[test]
    fn eight_bit_cascade_is_correct() {
        let c = comparator(8);
        for (a, b) in [
            (0u64, 0u64),
            (255, 255),
            (128, 127),
            (127, 128),
            (200, 200),
            (1, 254),
            (16, 16),
            (17, 16),
        ] {
            let (gt, lt, eq) = compare_words(&c, 8, a, b);
            assert_eq!((gt, lt, eq), (a > b, a < b, a == b), "{a} vs {b}");
        }
    }

    #[test]
    fn s1_shape_matches_paper() {
        let c = s1();
        assert_eq!(c.name(), "s1");
        assert_eq!(c.num_inputs(), 48);
        assert_eq!(c.num_outputs(), 3);
        // Six 7485s, a couple hundred gates after redundancy removal.
        assert!(c.num_gates() > 100, "got {}", c.num_gates());
        assert!(c.num_gates() < 400, "got {}", c.num_gates());
    }

    #[test]
    fn s1_spot_checks() {
        let c = s1();
        for (a, b) in [
            (0u64, 0u64),
            ((1 << 24) - 1, (1 << 24) - 1),
            (0x800000, 0x7FFFFF),
            (0x123456, 0x123456),
            (0x123456, 0x123457),
        ] {
            let (gt, lt, eq) = compare_words(&c, 24, a, b);
            assert_eq!((gt, lt, eq), (a > b, a < b, a == b), "{a:#x} vs {b:#x}");
        }
    }

    #[test]
    fn simplified_s1_contains_no_constants() {
        let c = s1();
        for (_, n) in c.iter() {
            assert!(
                !matches!(n.kind(), GateKind::Const0 | GateKind::Const1),
                "constant survived simplification: {}",
                n.name()
            );
        }
    }
}

//! C6288-style parallel array multiplier.
//!
//! ISCAS-85's C6288 is a 16×16 array multiplier of 240 adder cells; its
//! structure is published and fully reconstructible, which makes it the
//! most faithful member of our ISCAS-85-like family.  Notably, array
//! multipliers are *easy* for random testing (Table 1 lists only 1.9·10³
//! patterns) — a useful negative control for the optimizer.

use wrt_circuit::{Circuit, CircuitBuilder, NodeId};

use crate::cells::{full_adder, half_adder};

/// `n × n` array multiplier: inputs `A0..A<n-1>`, `B0..B<n-1>`, outputs
/// `P0..P<2n-1>` (product, LSB first).
///
/// Built as an AND matrix of partial products followed by a carry-save
/// reduction: every product column is reduced with full/half adders whose
/// carries ripple into the next column, until one bit per column remains.
///
/// # Panics
///
/// Panics if `n < 2`.
pub fn array_multiplier(n: usize) -> Circuit {
    assert!(n >= 2, "multiplier width must be at least 2");
    let mut b = CircuitBuilder::named(format!("mul{n}"));
    let a: Vec<NodeId> = (0..n).map(|i| b.input(format!("A{i}"))).collect();
    let bb: Vec<NodeId> = (0..n).map(|i| b.input(format!("B{i}"))).collect();

    // Column stacks: cols[k] holds all bits of weight 2^k awaiting summation.
    let mut cols: Vec<Vec<NodeId>> = vec![Vec::new(); 2 * n + 1];
    for (i, &bi) in bb.iter().enumerate() {
        for (j, &aj) in a.iter().enumerate() {
            let pp = b.and2(aj, bi).expect("valid fanin");
            cols[i + j].push(pp);
        }
    }

    // Reduce left to right so carries land in not-yet-reduced columns.
    for k in 0..2 * n {
        while cols[k].len() > 1 {
            if cols[k].len() >= 3 {
                let z = cols[k].pop().expect("len >= 3");
                let y = cols[k].pop().expect("len >= 3");
                let x = cols[k].pop().expect("len >= 3");
                let (s, c) = full_adder(&mut b, x, y, z);
                cols[k].push(s);
                cols[k + 1].push(c);
            } else {
                let y = cols[k].pop().expect("len == 2");
                let x = cols[k].pop().expect("len == 2");
                let (s, c) = half_adder(&mut b, x, y);
                cols[k].push(s);
                cols[k + 1].push(c);
            }
        }
    }
    debug_assert!(
        cols[2 * n].is_empty(),
        "product of n-bit operands fits in 2n bits"
    );

    let zero = b.const0();
    for (k, col) in cols.iter().enumerate().take(2 * n) {
        let bit = col.first().copied().unwrap_or(zero);
        let out = b
            .gate(wrt_circuit::GateKind::Buf, format!("P{k}"), &[bit])
            .expect("valid fanin");
        b.mark_output(out);
    }
    wrt_circuit::simplify(&b.build().expect("generator produces valid circuits"))
}

/// The C6288 analogue: a 16×16 array multiplier (~1.4 k gates in our AND/
/// XOR/OR realization vs. 2.4 k NOR gates in the original).
pub fn c6288ish() -> Circuit {
    crate::comparator::rename(array_multiplier(16), "c6288ish")
}

#[cfg(test)]
mod tests {
    use super::*;
    use wrt_circuit::GateKind;

    fn eval(c: &Circuit, assignment: &[bool]) -> Vec<bool> {
        let mut values = vec![false; c.num_nodes()];
        let mut buf = Vec::new();
        for (id, node) in c.iter() {
            values[id.index()] = match node.kind() {
                GateKind::Input => assignment[c.input_position(id).expect("pi")],
                kind => {
                    buf.clear();
                    buf.extend(node.fanin().iter().map(|f| values[f.index()]));
                    kind.eval(&buf)
                }
            };
        }
        c.outputs().iter().map(|&o| values[o.index()]).collect()
    }

    fn multiply(c: &Circuit, n: usize, a: u64, b: u64) -> u64 {
        let mut assignment = Vec::new();
        for i in 0..n {
            assignment.push((a >> i) & 1 == 1);
        }
        for i in 0..n {
            assignment.push((b >> i) & 1 == 1);
        }
        let out = eval(c, &assignment);
        out.iter()
            .enumerate()
            .filter(|&(_, &bit)| bit)
            .map(|(i, _)| 1u64 << i)
            .sum()
    }

    #[test]
    fn four_bit_multiplier_exhaustive() {
        let c = array_multiplier(4);
        for a in 0..16u64 {
            for b in 0..16u64 {
                assert_eq!(multiply(&c, 4, a, b), a * b, "{a} * {b}");
            }
        }
    }

    #[test]
    fn eight_bit_multiplier_spot_checks() {
        let c = array_multiplier(8);
        for (a, b) in [(255u64, 255u64), (200, 121), (1, 37), (0, 99), (128, 2)] {
            assert_eq!(multiply(&c, 8, a, b), a * b, "{a} * {b}");
        }
    }

    #[test]
    fn c6288ish_shape() {
        let c = c6288ish();
        assert_eq!(c.num_inputs(), 32);
        assert_eq!(c.num_outputs(), 32);
        assert!(c.num_gates() > 1000, "got {}", c.num_gates());
    }
}

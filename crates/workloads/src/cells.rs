//! Reusable gate-level cells (adders, muxes, balanced trees).
//!
//! All helpers take a [`CircuitBuilder`] and already-existing node ids;
//! they panic only on internal invariant violations (the generators in this
//! crate always pass valid ids).

use wrt_circuit::{CircuitBuilder, GateKind, NodeId};

/// Half adder: returns `(sum, carry)`.
pub fn half_adder(b: &mut CircuitBuilder, x: NodeId, y: NodeId) -> (NodeId, NodeId) {
    let sum = b.xor2(x, y).expect("valid cell fanin");
    let carry = b.and2(x, y).expect("valid cell fanin");
    (sum, carry)
}

/// Full adder: returns `(sum, carry)`.
pub fn full_adder(
    b: &mut CircuitBuilder,
    x: NodeId,
    y: NodeId,
    cin: NodeId,
) -> (NodeId, NodeId) {
    let t = b.xor2(x, y).expect("valid cell fanin");
    let sum = b.xor2(t, cin).expect("valid cell fanin");
    let c1 = b.and2(x, y).expect("valid cell fanin");
    let c2 = b.and2(t, cin).expect("valid cell fanin");
    let carry = b.or2(c1, c2).expect("valid cell fanin");
    (sum, carry)
}

/// 2:1 multiplexer: `sel ? hi : lo`.
pub fn mux2(b: &mut CircuitBuilder, sel: NodeId, lo: NodeId, hi: NodeId) -> NodeId {
    let nsel = b.not(sel).expect("valid cell fanin");
    let a0 = b.and2(nsel, lo).expect("valid cell fanin");
    let a1 = b.and2(sel, hi).expect("valid cell fanin");
    b.or2(a0, a1).expect("valid cell fanin")
}

/// Balanced tree of 2-input gates of the given kind over `leaves`.
///
/// # Panics
///
/// Panics if `leaves` is empty.
pub fn tree(b: &mut CircuitBuilder, kind: GateKind, leaves: &[NodeId]) -> NodeId {
    assert!(!leaves.is_empty(), "tree needs at least one leaf");
    let mut layer: Vec<NodeId> = leaves.to_vec();
    while layer.len() > 1 {
        let mut next = Vec::with_capacity(layer.len().div_ceil(2));
        for pair in layer.chunks(2) {
            next.push(match pair {
                [a, y] => b.gate_auto(kind, &[*a, *y]).expect("valid cell fanin"),
                [a] => *a,
                _ => unreachable!(),
            });
        }
        layer = next;
    }
    layer[0]
}

/// Balanced XOR tree (odd parity) over `leaves`.
///
/// # Panics
///
/// Panics if `leaves` is empty.
pub fn xor_tree(b: &mut CircuitBuilder, leaves: &[NodeId]) -> NodeId {
    tree(b, GateKind::Xor, leaves)
}

/// Balanced AND tree over `leaves`.
///
/// # Panics
///
/// Panics if `leaves` is empty.
pub fn and_tree(b: &mut CircuitBuilder, leaves: &[NodeId]) -> NodeId {
    tree(b, GateKind::And, leaves)
}

/// Balanced OR tree over `leaves`.
///
/// # Panics
///
/// Panics if `leaves` is empty.
pub fn or_tree(b: &mut CircuitBuilder, leaves: &[NodeId]) -> NodeId {
    tree(b, GateKind::Or, leaves)
}

/// XOR built from four NAND gates (the expansion used by ISCAS-85's C1355,
/// which is C499 with its XORs replaced by NAND networks).
pub fn xor_from_nands(b: &mut CircuitBuilder, x: NodeId, y: NodeId) -> NodeId {
    let n1 = b.gate_auto(GateKind::Nand, &[x, y]).expect("valid cell fanin");
    let n2 = b.gate_auto(GateKind::Nand, &[x, n1]).expect("valid cell fanin");
    let n3 = b.gate_auto(GateKind::Nand, &[y, n1]).expect("valid cell fanin");
    b.gate_auto(GateKind::Nand, &[n2, n3]).expect("valid cell fanin")
}

/// Ripple-carry adder over equal-width operands; returns `(sum_bits, cout)`.
///
/// # Panics
///
/// Panics if the operand slices have different lengths or are empty.
pub fn ripple_adder(
    b: &mut CircuitBuilder,
    xs: &[NodeId],
    ys: &[NodeId],
    cin: NodeId,
) -> (Vec<NodeId>, NodeId) {
    assert_eq!(xs.len(), ys.len(), "operand widths must match");
    assert!(!xs.is_empty(), "adder needs at least one bit");
    let mut carry = cin;
    let mut sums = Vec::with_capacity(xs.len());
    for (&x, &y) in xs.iter().zip(ys) {
        let (s, c) = full_adder(b, x, y, carry);
        sums.push(s);
        carry = c;
    }
    (sums, carry)
}

/// Bitwise equality comparator: wide AND of per-bit XNORs.
///
/// Its output is the canonical random-pattern-resistant signal: under
/// equiprobable patterns it is 1 with probability `2^-width`.
///
/// # Panics
///
/// Panics if the operand slices have different lengths or are empty.
pub fn equality(b: &mut CircuitBuilder, xs: &[NodeId], ys: &[NodeId]) -> NodeId {
    assert_eq!(xs.len(), ys.len(), "operand widths must match");
    let bits: Vec<NodeId> = xs
        .iter()
        .zip(ys)
        .map(|(&x, &y)| b.gate_auto(GateKind::Xnor, &[x, y]).expect("valid cell fanin"))
        .collect();
    and_tree(b, &bits)
}

#[cfg(test)]
mod tests {
    use super::*;
    use wrt_circuit::{Circuit, CircuitBuilder};

    fn eval(c: &Circuit, assignment: &[bool]) -> Vec<bool> {
        let mut values = vec![false; c.num_nodes()];
        let mut buf = Vec::new();
        for (id, node) in c.iter() {
            values[id.index()] = match node.kind() {
                GateKind::Input => assignment[c.input_position(id).expect("pi")],
                kind => {
                    buf.clear();
                    buf.extend(node.fanin().iter().map(|f| values[f.index()]));
                    kind.eval(&buf)
                }
            };
        }
        c.outputs().iter().map(|&o| values[o.index()]).collect()
    }

    #[test]
    fn full_adder_truth_table() {
        let mut b = CircuitBuilder::named("fa");
        let x = b.input("x");
        let y = b.input("y");
        let cin = b.input("cin");
        let (s, c) = full_adder(&mut b, x, y, cin);
        b.mark_output(s);
        b.mark_output(c);
        let circuit = b.build().unwrap();
        for v in 0..8u32 {
            let bits: Vec<bool> = (0..3).map(|i| (v >> i) & 1 == 1).collect();
            let total = bits.iter().filter(|&&x| x).count();
            let out = eval(&circuit, &bits);
            assert_eq!(out[0], total % 2 == 1, "sum for {bits:?}");
            assert_eq!(out[1], total >= 2, "carry for {bits:?}");
        }
    }

    #[test]
    fn mux_selects() {
        let mut b = CircuitBuilder::named("mux");
        let sel = b.input("sel");
        let lo = b.input("lo");
        let hi = b.input("hi");
        let m = mux2(&mut b, sel, lo, hi);
        b.mark_output(m);
        let c = b.build().unwrap();
        assert_eq!(eval(&c, &[false, true, false]), vec![true]); // sel=0 -> lo
        assert_eq!(eval(&c, &[true, true, false]), vec![false]); // sel=1 -> hi
    }

    #[test]
    fn xor_from_nands_is_xor() {
        let mut b = CircuitBuilder::named("xn");
        let x = b.input("x");
        let y = b.input("y");
        let g = xor_from_nands(&mut b, x, y);
        b.mark_output(g);
        let c = b.build().unwrap();
        for (vx, vy) in [(false, false), (false, true), (true, false), (true, true)] {
            assert_eq!(eval(&c, &[vx, vy])[0], vx ^ vy);
        }
    }

    #[test]
    fn ripple_adder_adds() {
        let w = 6;
        let mut b = CircuitBuilder::named("add");
        let xs: Vec<_> = (0..w).map(|i| b.input(format!("x{i}"))).collect();
        let ys: Vec<_> = (0..w).map(|i| b.input(format!("y{i}"))).collect();
        let zero = b.const0();
        let (sums, cout) = ripple_adder(&mut b, &xs, &ys, zero);
        for s in &sums {
            b.mark_output(*s);
        }
        b.mark_output(cout);
        let c = b.build().unwrap();
        for (a_val, b_val) in [(0u32, 0u32), (5, 9), (63, 1), (33, 31), (63, 63)] {
            let mut assignment = Vec::new();
            for i in 0..w {
                assignment.push((a_val >> i) & 1 == 1);
            }
            for i in 0..w {
                assignment.push((b_val >> i) & 1 == 1);
            }
            let out = eval(&c, &assignment);
            let total = a_val + b_val;
            for (i, &bit) in out.iter().take(w).enumerate() {
                assert_eq!(bit, (total >> i) & 1 == 1, "{a_val}+{b_val} bit {i}");
            }
            assert_eq!(out[w], (total >> w) & 1 == 1, "{a_val}+{b_val} carry");
        }
    }

    #[test]
    fn equality_detects_only_equal() {
        let mut b = CircuitBuilder::named("eq");
        let xs: Vec<_> = (0..4).map(|i| b.input(format!("x{i}"))).collect();
        let ys: Vec<_> = (0..4).map(|i| b.input(format!("y{i}"))).collect();
        let eq = equality(&mut b, &xs, &ys);
        b.mark_output(eq);
        let c = b.build().unwrap();
        for a_val in 0..16u32 {
            for b_val in 0..16u32 {
                let mut assignment = Vec::new();
                for i in 0..4 {
                    assignment.push((a_val >> i) & 1 == 1);
                }
                for i in 0..4 {
                    assignment.push((b_val >> i) & 1 == 1);
                }
                assert_eq!(eval(&c, &assignment)[0], a_val == b_val);
            }
        }
    }

    #[test]
    fn trees_of_single_leaf_are_the_leaf() {
        let mut b = CircuitBuilder::named("t");
        let x = b.input("x");
        let t = and_tree(&mut b, &[x]);
        assert_eq!(t, x);
        let o = b.not(x).unwrap();
        b.mark_output(o);
        b.build().unwrap();
    }

    #[test]
    fn wide_trees_compute_their_function() {
        let n = 13;
        let mut b = CircuitBuilder::named("wide");
        let xs: Vec<_> = (0..n).map(|i| b.input(format!("x{i}"))).collect();
        let a = and_tree(&mut b, &xs);
        let o = or_tree(&mut b, &xs);
        let x = xor_tree(&mut b, &xs);
        b.mark_output(a);
        b.mark_output(o);
        b.mark_output(x);
        let c = b.build().unwrap();
        for v in [0u32, 1, 0x1FFF, 0x1234, 0x1FFE] {
            let bits: Vec<bool> = (0..n).map(|i| (v >> i) & 1 == 1).collect();
            let ones = bits.iter().filter(|&&q| q).count();
            let out = eval(&c, &bits);
            assert_eq!(out[0], ones == n);
            assert_eq!(out[1], ones > 0);
            assert_eq!(out[2], ones % 2 == 1);
        }
    }
}

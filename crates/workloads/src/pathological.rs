//! The pathological case of the paper's §5.3.
//!
//! Optimization fails when two faults both have very low detection
//! probability *and* nearly disjoint test sets (large Hamming distance
//! between the tests).  The canonical example: a wide AND and a wide NOR
//! over the *same* inputs.  Detecting `AND-output s-a-0` requires all
//! inputs 1; detecting `NOR-output s-a-0` requires all inputs 0.  A single
//! weight set cannot make both likely: `Π x_i · Π (1 − x_i)` is maximized
//! at `x_i = 1/2`, right back at the equiprobable disaster.  The fix the
//! paper sketches — partitioning the fault set and computing one weight
//! set per part — is implemented in `wrt-core::optimize_partitioned`.

use wrt_circuit::{Circuit, CircuitBuilder, GateKind, NodeId};

/// Builds the AND/NOR conflict circuit over `width` shared inputs.
///
/// Outputs: `WIDE_AND` and `WIDE_NOR`.
///
/// # Panics
///
/// Panics if `width < 2`.
pub fn pathological_pair(width: usize) -> Circuit {
    assert!(width >= 2, "conflict needs at least two inputs");
    let mut b = CircuitBuilder::named(format!("patho{width}"));
    let xs: Vec<NodeId> = (0..width).map(|i| b.input(format!("X{i}"))).collect();
    let wide_and = b.gate(GateKind::And, "WIDE_AND", &xs).expect("valid fanin");
    let wide_nor = b.gate(GateKind::Nor, "WIDE_NOR", &xs).expect("valid fanin");
    b.mark_output(wide_and);
    b.mark_output(wide_nor);
    b.build().expect("generator produces valid circuits")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_and_functions() {
        let c = pathological_pair(8);
        assert_eq!(c.num_inputs(), 8);
        assert_eq!(c.num_outputs(), 2);
        assert_eq!(c.num_gates(), 2);
    }

    #[test]
    fn outputs_conflict_by_construction() {
        // Any single pattern can excite at most one of the two hard
        // conditions (all ones vs. all zeros).
        let c = pathological_pair(4);
        let and_out = c.node_id("WIDE_AND").unwrap();
        let nor_out = c.node_id("WIDE_NOR").unwrap();
        for v in 0..16u32 {
            let assignment: Vec<bool> = (0..4).map(|i| (v >> i) & 1 == 1).collect();
            let mut values = vec![false; c.num_nodes()];
            let mut buf = Vec::new();
            for (id, node) in c.iter() {
                values[id.index()] = match node.kind() {
                    GateKind::Input => assignment[c.input_position(id).expect("pi")],
                    kind => {
                        buf.clear();
                        buf.extend(node.fanin().iter().map(|f| values[f.index()]));
                        kind.eval(&buf)
                    }
                };
            }
            assert!(
                !(values[and_out.index()] && values[nor_out.index()]),
                "both hard conditions true at once"
            );
        }
    }
}

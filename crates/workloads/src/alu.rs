//! ALU generators standing in for the ISCAS-85 ALU-class circuits
//! (C880 ≈ 8-bit ALU, C3540 ≈ BCD ALU, C5315 ≈ ALU selector).
//!
//! The generated ALU computes, per the 3-bit function select
//! `(S2, S1, S0)`:
//!
//! | S1 S0 | result          |
//! |-------|-----------------|
//! | 0 0   | A + B (or A − B when S2 = 1) |
//! | 0 1   | A AND B         |
//! | 1 0   | A OR B          |
//! | 1 1   | A XOR B         |
//!
//! plus status outputs: carry-out, zero flag (wide NOR over the result) and
//! optionally odd parity and an `A == B` comparator — the latter two add
//! the wide-support signals that make the larger ISCAS ALUs interesting
//! testability subjects.

use wrt_circuit::{Circuit, CircuitBuilder, GateKind, NodeId};

use crate::cells::{equality, full_adder, mux2, xor_tree};

/// Feature switches for [`alu`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AluFeatures {
    /// Emit an odd-parity output over the result bits.
    pub parity: bool,
    /// Emit an `A == B` comparator output (wide AND of XNORs) over the
    /// low `compare` bits; `0` disables the output.
    pub compare: usize,
    /// The `ZERO` flag covers the low `zero_width` result bits (clamped
    /// to the ALU width).  Real ALUs expose byte/halfword zero flags; the
    /// width also controls how random-pattern-resistant the flag is
    /// (`2^-zero_width` excitation probability).
    pub zero_width: usize,
}

impl Default for AluFeatures {
    fn default() -> Self {
        AluFeatures {
            parity: true,
            compare: 0,
            zero_width: usize::MAX,
        }
    }
}

/// Generates a `width`-bit ALU with select inputs `S0..S2`, operands
/// `A*`/`B*`, carry-in `CIN`; outputs `F*`, `COUT`, `ZERO` and the
/// feature-controlled extras.
///
/// # Panics
///
/// Panics if `width == 0`.
pub fn alu(width: usize, features: AluFeatures) -> Circuit {
    assert!(width > 0, "ALU width must be positive");
    let mut b = CircuitBuilder::named(format!("alu{width}"));
    let a: Vec<NodeId> = (0..width).map(|i| b.input(format!("A{i}"))).collect();
    let bb: Vec<NodeId> = (0..width).map(|i| b.input(format!("B{i}"))).collect();
    let s0 = b.input("S0");
    let s1 = b.input("S1");
    let s2 = b.input("S2");
    let cin = b.input("CIN");

    // Arithmetic path: A + (B ^ S2) + (CIN | S2-adjusted); subtraction uses
    // two's complement (invert B, force carry-in high via OR).
    let b_arith: Vec<NodeId> = bb
        .iter()
        .map(|&x| b.xor2(x, s2).expect("valid fanin"))
        .collect();
    let c0 = b.or2(cin, s2).expect("valid fanin");
    let mut carry = c0;
    let mut add_bits = Vec::with_capacity(width);
    for i in 0..width {
        let (s, c) = full_adder(&mut b, a[i], b_arith[i], carry);
        add_bits.push(s);
        carry = c;
    }
    let cout = carry;

    // Logic paths.
    let mut result = Vec::with_capacity(width);
    for i in 0..width {
        let and_i = b.and2(a[i], bb[i]).expect("valid fanin");
        let or_i = b.or2(a[i], bb[i]).expect("valid fanin");
        let xor_i = b.xor2(a[i], bb[i]).expect("valid fanin");
        // 4:1 mux on (s1, s0).
        let lo = mux2(&mut b, s0, add_bits[i], and_i);
        let hi = mux2(&mut b, s0, or_i, xor_i);
        let f = mux2(&mut b, s1, lo, hi);
        let named = b.gate(GateKind::Buf, format!("F{i}"), &[f]).expect("valid fanin");
        result.push(named);
    }

    for &f in &result {
        b.mark_output(f);
    }
    let cout_named = b.gate(GateKind::Buf, "COUT", &[cout]).expect("valid fanin");
    b.mark_output(cout_named);
    // Zero flag: NOR over the low result bits.
    let zw = features.zero_width.clamp(1, width);
    let zero = b
        .gate(GateKind::Nor, "ZERO", &result[..zw])
        .expect("valid fanin");
    b.mark_output(zero);
    if features.parity {
        let p = xor_tree(&mut b, &result);
        let p_named = b.gate(GateKind::Buf, "PARITY", &[p]).expect("valid fanin");
        b.mark_output(p_named);
    }
    if features.compare > 0 {
        let cw = features.compare.min(width);
        let eq = equality(&mut b, &a[..cw], &bb[..cw]);
        let eq_named = b.gate(GateKind::Buf, "AEQB", &[eq]).expect("valid fanin");
        b.mark_output(eq_named);
    }
    wrt_circuit::simplify(&b.build().expect("generator produces valid circuits"))
}

/// C880 analogue: 8-bit ALU with parity and a full-width zero flag
/// (hardest excitation `≈ 2^-8`, matching C880's modest 3.7·10⁴).
pub fn c880ish() -> Circuit {
    crate::comparator::rename(alu(8, AluFeatures::default()), "c880ish")
}

/// C3540 analogue: 16-bit ALU with parity, a 16-bit comparator and a
/// byte-wide zero flag (hardest structure `≈ 2^-16`, matching C3540's
/// 2.3·10⁶ scale).
pub fn c3540ish() -> Circuit {
    crate::comparator::rename(
        alu(
            16,
            AluFeatures {
                parity: true,
                compare: 16,
                zero_width: 8,
            },
        ),
        "c3540ish",
    )
}

/// C5315 analogue: 24-bit ALU selector with parity and a 12-bit zero flag
/// (hardest structure `≈ 2^-12`, matching C5315's 5.3·10⁴ scale).
pub fn c5315ish() -> Circuit {
    crate::comparator::rename(
        alu(
            24,
            AluFeatures {
                parity: true,
                compare: 0,
                zero_width: 12,
            },
        ),
        "c5315ish",
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn eval(c: &Circuit, assignment: &[bool]) -> Vec<bool> {
        let mut values = vec![false; c.num_nodes()];
        let mut buf = Vec::new();
        for (id, node) in c.iter() {
            values[id.index()] = match node.kind() {
                GateKind::Input => assignment[c.input_position(id).expect("pi")],
                kind => {
                    buf.clear();
                    buf.extend(node.fanin().iter().map(|f| values[f.index()]));
                    kind.eval(&buf)
                }
            };
        }
        c.outputs().iter().map(|&o| values[o.index()]).collect()
    }

    fn run_alu(
        c: &Circuit,
        width: usize,
        a: u64,
        b: u64,
        sel: u8,
        cin: bool,
    ) -> (u64, bool, bool) {
        let mut assignment = Vec::new();
        for i in 0..width {
            assignment.push((a >> i) & 1 == 1);
        }
        for i in 0..width {
            assignment.push((b >> i) & 1 == 1);
        }
        assignment.push(sel & 1 == 1); // S0
        assignment.push(sel & 2 == 2); // S1
        assignment.push(sel & 4 == 4); // S2
        assignment.push(cin);
        let out = eval(c, &assignment);
        let mut f = 0u64;
        for (i, &bit) in out.iter().enumerate().take(width) {
            if bit {
                f |= 1 << i;
            }
        }
        (f, out[width], out[width + 1]) // (F, COUT, ZERO)
    }

    #[test]
    fn alu_operations_8bit() {
        let c = alu(8, AluFeatures::default());
        let mask = 0xFFu64;
        for (a, b) in [(0x5Au64, 0xC3u64), (0xFF, 0x01), (0x00, 0x00), (0x80, 0x80)] {
            // ADD (sel = 0, cin = 0)
            let (f, cout, zero) = run_alu(&c, 8, a, b, 0b000, false);
            assert_eq!(f, (a + b) & mask, "{a:#x} + {b:#x}");
            assert_eq!(cout, a + b > mask);
            assert_eq!(zero, (a + b) & mask == 0);
            // SUB (S2 = 1)
            let (f, _, _) = run_alu(&c, 8, a, b, 0b100, false);
            assert_eq!(f, a.wrapping_sub(b) & mask, "{a:#x} - {b:#x}");
            // AND / OR / XOR
            assert_eq!(run_alu(&c, 8, a, b, 0b001, false).0, a & b);
            assert_eq!(run_alu(&c, 8, a, b, 0b010, false).0, a | b);
            assert_eq!(run_alu(&c, 8, a, b, 0b011, false).0, a ^ b);
        }
    }

    #[test]
    fn carry_in_feeds_addition() {
        let c = alu(4, AluFeatures::default());
        let (f, _, _) = run_alu(&c, 4, 3, 4, 0b000, true);
        assert_eq!(f, 8);
    }

    #[test]
    fn compare_output_when_enabled() {
        let c = alu(
            4,
            AluFeatures {
                parity: false,
                compare: 4,
                zero_width: usize::MAX,
            },
        );
        // Outputs: F0..3, COUT, ZERO, AEQB
        let get = |a: u64, b: u64| {
            let mut assignment = Vec::new();
            for i in 0..4 {
                assignment.push((a >> i) & 1 == 1);
            }
            for i in 0..4 {
                assignment.push((b >> i) & 1 == 1);
            }
            assignment.extend([false, false, false, false]);
            *eval(&c, &assignment).last().expect("AEQB present")
        };
        assert!(get(9, 9));
        assert!(!get(9, 8));
    }

    #[test]
    fn family_shapes() {
        let c880 = c880ish();
        assert_eq!(c880.num_inputs(), 20);
        assert!(c880.num_gates() > 150, "got {}", c880.num_gates());
        let c3540 = c3540ish();
        assert!(c3540.num_gates() > 300, "got {}", c3540.num_gates());
        let c5315 = c5315ish();
        assert!(c5315.num_gates() > 500, "got {}", c5315.num_gates());
    }
}

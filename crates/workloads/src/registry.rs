//! Central registry of the paper's twelve benchmark circuits.

use wrt_circuit::Circuit;

/// Names of the twelve circuits of Table 1, in the paper's order.
pub const WORKLOAD_NAMES: [&str; 12] = [
    "s1", "s2", "c432ish", "c499ish", "c880ish", "c1355ish", "c1908ish", "c2670ish", "c3540ish",
    "c5315ish", "c6288ish", "c7552ish",
];

/// Names of the starred circuits (the random-pattern-resistant ones the
/// paper optimizes in Tables 2–5).
pub const STARRED_NAMES: [&str; 4] = ["s1", "s2", "c2670ish", "c7552ish"];

/// Builds a workload circuit by its registry name.
///
/// Returns `None` for unknown names.
///
/// # Example
///
/// ```
/// let c = wrt_workloads::by_name("s1").expect("registered");
/// assert_eq!(c.name(), "s1");
/// assert!(wrt_workloads::by_name("c17").is_none());
/// ```
pub fn by_name(name: &str) -> Option<Circuit> {
    Some(match name {
        "s1" => crate::s1(),
        "s2" => crate::s2(),
        "c432ish" => crate::c432ish(),
        "c499ish" => crate::c499ish(),
        "c880ish" => crate::c880ish(),
        "c1355ish" => crate::c1355ish(),
        "c1908ish" => crate::c1908ish(),
        "c2670ish" => crate::c2670ish(),
        "c3540ish" => crate::c3540ish(),
        "c5315ish" => crate::c5315ish(),
        "c6288ish" => crate::c6288ish(),
        "c7552ish" => crate::c7552ish(),
        _ => return None,
    })
}

/// All twelve circuits of Table 1, in order.
pub fn all_paper_circuits() -> Vec<Circuit> {
    WORKLOAD_NAMES
        .iter()
        .map(|n| by_name(n).expect("registered name"))
        .collect()
}

/// The four starred (random-pattern-resistant) circuits of Tables 2–5.
pub fn starred_circuits() -> Vec<Circuit> {
    STARRED_NAMES
        .iter()
        .map(|n| by_name(n).expect("registered name"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_name_builds() {
        for name in WORKLOAD_NAMES {
            let c = by_name(name).expect("builds");
            assert_eq!(c.name(), name);
            assert!(c.num_inputs() > 0);
            assert!(c.num_outputs() > 0);
            assert!(c.num_gates() > 0);
        }
    }

    #[test]
    fn starred_is_subset_of_all() {
        for name in STARRED_NAMES {
            assert!(WORKLOAD_NAMES.contains(&name));
        }
        assert_eq!(starred_circuits().len(), 4);
    }

    #[test]
    fn circuits_are_deterministic() {
        let a = by_name("c880ish").unwrap();
        let b = by_name("c880ish").unwrap();
        assert_eq!(a.num_nodes(), b.num_nodes());
        for (id, node) in a.iter() {
            let other = b.node(id);
            assert_eq!(node.kind(), other.kind());
            assert_eq!(node.fanin(), other.fanin());
        }
    }
}

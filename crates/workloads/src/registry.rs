//! Central registry of the paper's twelve benchmark circuits.

use wrt_circuit::Circuit;

/// Names of the twelve circuits of Table 1, in the paper's order.
pub const WORKLOAD_NAMES: [&str; 12] = [
    "s1", "s2", "c432ish", "c499ish", "c880ish", "c1355ish", "c1908ish", "c2670ish", "c3540ish",
    "c5315ish", "c6288ish", "c7552ish",
];

/// Names of the starred circuits (the random-pattern-resistant ones the
/// paper optimizes in Tables 2–5).
pub const STARRED_NAMES: [&str; 4] = ["s1", "s2", "c2670ish", "c7552ish"];

/// Parses a synthetic tiled-circuit name of the form
/// `tiled_<gates>_<seed>` (the names [`crate::tiled`] assigns).
fn parse_tiled_name(name: &str) -> Option<Circuit> {
    let rest = name.strip_prefix("tiled_")?;
    let (gates, seed) = rest.split_once('_')?;
    let gates: usize = gates.parse().ok()?;
    let seed: u64 = seed.parse().ok()?;
    if gates == 0 {
        return None;
    }
    Some(crate::tiled(gates, seed))
}

/// Builds a workload circuit by its registry name.
///
/// Beyond the twelve fixed paper circuits, names of the form
/// `tiled_<gates>_<seed>` build the synthetic scale workload
/// [`crate::tiled`] with those parameters (e.g. `tiled_120000_7`), so
/// benchmarks and the CLI can request million-gate-class circuits by
/// name.
///
/// Returns `None` for unknown names.
///
/// # Example
///
/// ```
/// let c = wrt_workloads::by_name("s1").expect("registered");
/// assert_eq!(c.name(), "s1");
/// assert!(wrt_workloads::by_name("c17").is_none());
/// let t = wrt_workloads::by_name("tiled_5000_3").expect("synthetic");
/// assert_eq!(t.name(), "tiled_5000_3");
/// ```
pub fn by_name(name: &str) -> Option<Circuit> {
    if name.starts_with("tiled_") {
        return parse_tiled_name(name);
    }
    Some(match name {
        "s1" => crate::s1(),
        "s2" => crate::s2(),
        "c432ish" => crate::c432ish(),
        "c499ish" => crate::c499ish(),
        "c880ish" => crate::c880ish(),
        "c1355ish" => crate::c1355ish(),
        "c1908ish" => crate::c1908ish(),
        "c2670ish" => crate::c2670ish(),
        "c3540ish" => crate::c3540ish(),
        "c5315ish" => crate::c5315ish(),
        "c6288ish" => crate::c6288ish(),
        "c7552ish" => crate::c7552ish(),
        _ => return None,
    })
}

/// All twelve circuits of Table 1, in order.
pub fn all_paper_circuits() -> Vec<Circuit> {
    WORKLOAD_NAMES
        .iter()
        .map(|n| by_name(n).expect("registered name"))
        .collect()
}

/// The four starred (random-pattern-resistant) circuits of Tables 2–5.
pub fn starred_circuits() -> Vec<Circuit> {
    STARRED_NAMES
        .iter()
        .map(|n| by_name(n).expect("registered name"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_name_builds() {
        for name in WORKLOAD_NAMES {
            let c = by_name(name).expect("builds");
            assert_eq!(c.name(), name);
            assert!(c.num_inputs() > 0);
            assert!(c.num_outputs() > 0);
            assert!(c.num_gates() > 0);
        }
    }

    #[test]
    fn starred_is_subset_of_all() {
        for name in STARRED_NAMES {
            assert!(WORKLOAD_NAMES.contains(&name));
        }
        assert_eq!(starred_circuits().len(), 4);
    }

    #[test]
    fn tiled_names_parse_and_build() {
        let c = by_name("tiled_2000_5").expect("valid tiled name");
        assert_eq!(c.name(), "tiled_2000_5");
        assert!(c.num_gates() >= 2000);
        for bad in [
            "tiled_", "tiled_abc_1", "tiled_100", "tiled_100_x", "tiled_0_1", "tiled__",
        ] {
            assert!(by_name(bad).is_none(), "{bad} must not parse");
        }
    }

    #[test]
    fn circuits_are_deterministic() {
        let a = by_name("c880ish").unwrap();
        let b = by_name("c880ish").unwrap();
        assert_eq!(a.num_nodes(), b.num_nodes());
        for (id, node) in a.iter() {
            let other = b.node(id);
            assert_eq!(node.kind(), other.kind());
            assert_eq!(node.fanin(), other.fanin());
        }
    }
}

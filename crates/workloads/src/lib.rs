//! Benchmark circuit generators for the `wrt` workspace.
//!
//! The paper's evaluation runs on twelve circuits: the ISCAS-85 benchmarks
//! C432–C7552 \[BRGL85\], a 24-bit comparator `S1` built from six TI SN7485
//! 4-bit comparators, and the combinational part of a divider `S2`
//! \[KuWu85\].  The original ISCAS-85 netlist files are not available
//! offline, so this crate provides *generators* for gate-level circuits of
//! the same functional class and comparable structure (see `DESIGN.md` §3
//! for the substitution argument).  `S1` is reconstructed faithfully from
//! the SN7485 datasheet logic; `S2` is a non-restoring array divider.
//!
//! All generators are deterministic: the same parameters always produce
//! the identical netlist.
//!
//! # Example
//!
//! ```
//! let s1 = wrt_workloads::s1();
//! assert_eq!(s1.num_inputs(), 48); // A0..A23, B0..B23
//! assert_eq!(s1.num_outputs(), 3); // A>B, A<B, A=B
//! ```

#![forbid(unsafe_code)]

mod adder_cmp;
mod alu;
pub mod cells;
mod comparator;
mod divider;
mod ecc;
mod interrupt;
mod multiplier;
mod pathological;
mod registry;
mod scale;

pub use adder_cmp::{adder_comparator, c2670ish, c7552ish};
pub use alu::{alu, c3540ish, c5315ish, c880ish};
pub use comparator::{comparator, s1, sn7485};
pub use divider::{array_divider, s2};
pub use ecc::{c1355ish, c1908ish, c499ish, sec_circuit};
pub use interrupt::{c432ish, priority_interrupt};
pub use multiplier::{array_multiplier, c6288ish};
pub use pathological::pathological_pair;
pub use registry::{all_paper_circuits, by_name, starred_circuits, WORKLOAD_NAMES};
pub use scale::tiled;

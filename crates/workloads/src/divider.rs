//! The paper's S2: the combinational part of an array divider \[KuWu85\].
//!
//! A non-restoring array divider is a grid of controlled add/subtract (CAS)
//! cells.  Row *i* shifts the next dividend bit into the signed partial
//! remainder and then conditionally adds or subtracts the divisor; the sign
//! of the row result is quotient bit *i* (inverted) and also the control
//! input of the next row.  The long control chains through the array are
//! what makes divider logic random-pattern resistant.

use wrt_circuit::{Circuit, CircuitBuilder, GateKind, NodeId};

/// One controlled add/subtract cell.
///
/// Computes one bit of `r + (d XOR t) + cin`; with the row's carry-in tied
/// to `t`, the row realizes `R + B` (`t = 0`) or `R − B` (`t = 1`, two's
/// complement).  Returns `(sum, carry)`.
fn cas(b: &mut CircuitBuilder, r: NodeId, d: NodeId, t: NodeId, cin: NodeId) -> (NodeId, NodeId) {
    let x = b.xor2(d, t).expect("valid fanin");
    let s1 = b.xor2(r, x).expect("valid fanin");
    let sum = b.xor2(s1, cin).expect("valid fanin");
    let c1 = b.and2(r, x).expect("valid fanin");
    let c2 = b.and2(s1, cin).expect("valid fanin");
    let carry = b.or2(c1, c2).expect("valid fanin");
    (sum, carry)
}

/// Non-restoring array divider: `2n`-bit dividend, `n`-bit divisor,
/// `n`-bit quotient and `n+1`-bit (corrected) remainder outputs, plus the
/// exception-detection outputs of a real divider datapath:
///
/// * `DIVZERO` — wide NOR over the divisor (1 iff divisor = 0), the
///   canonical random-pattern-resistant signal of divider logic
///   (probability `2^-n` under equiprobable patterns);
/// * `OVFEQ` — quotient-overflow boundary detect: the top dividend half
///   equals the divisor (probability `2^-n`).
///
/// Inputs are `D0..D<2n-1>` (dividend, LSB first) and `V0..V<n-1>`
/// (divisor).  Outputs are `Q<n-1>..Q0` (MSB first), `R0..Rn`, `DIVZERO`,
/// `OVFEQ`.  The quotient is exact (`floor(dividend / divisor)`) whenever
/// the true quotient fits in `n` bits and the divisor is non-zero.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn array_divider(n: usize) -> Circuit {
    assert!(n > 0, "divider width must be positive");
    let w = n + 2; // signed partial remainder width
    let mut b = CircuitBuilder::named(format!("div{n}"));
    let dividend: Vec<NodeId> = (0..2 * n).map(|i| b.input(format!("D{i}"))).collect();
    let divisor: Vec<NodeId> = (0..n).map(|i| b.input(format!("V{i}"))).collect();
    let zero = b.const0();
    let one = b.const1();

    // Divisor zero-extended to the remainder width.
    let opb: Vec<NodeId> = (0..w).map(|j| if j < n { divisor[j] } else { zero }).collect();

    // R starts as the top n dividend bits, zero-extended (non-negative).
    let mut rem: Vec<NodeId> = (0..w)
        .map(|j| if j < n { dividend[n + j] } else { zero })
        .collect();

    let mut t = one; // first operation subtracts
    let mut quotient = Vec::with_capacity(n);
    for i in 0..n {
        // Shift left by one, bringing in the next dividend bit (the value
        // fits in w bits, so dropping the old MSB is exact).
        let mut shifted = Vec::with_capacity(w);
        shifted.push(dividend[n - 1 - i]);
        shifted.extend(rem.iter().take(w - 1).copied());

        // R := R ± B, carry-in = t.
        let mut carry = t;
        let mut next = Vec::with_capacity(w);
        for col in 0..w {
            let (s, c) = cas(&mut b, shifted[col], opb[col], t, carry);
            next.push(s);
            carry = c;
        }
        // Sign bit of the row result: q_i = NOT sign.
        let sign = next[w - 1];
        let q = b.not(sign).expect("valid fanin");
        quotient.push(q);
        t = q; // subtract next when the remainder stayed non-negative
        rem = next;
    }

    // Remainder correction: add B back when the final remainder is
    // negative (operand bits gated by the sign).
    let sign = rem[w - 1];
    let gated: Vec<NodeId> = opb
        .iter()
        .map(|&d| b.and2(d, sign).expect("valid fanin"))
        .collect();
    let mut carry = zero;
    let mut corrected = Vec::with_capacity(w);
    for col in 0..w {
        let (s, c) = cas(&mut b, rem[col], gated[col], zero, carry);
        corrected.push(s);
        carry = c;
    }

    for (i, &q) in quotient.iter().enumerate() {
        let out = b
            .gate(GateKind::Buf, format!("Q{}", n - 1 - i), &[q])
            .expect("valid fanin");
        b.mark_output(out);
    }
    for (i, &r) in corrected.iter().take(n + 1).enumerate() {
        let out = b
            .gate(GateKind::Buf, format!("R{i}"), &[r])
            .expect("valid fanin");
        b.mark_output(out);
    }

    // Exception detection: the random-pattern-resistant part.
    let divzero = b
        .gate(GateKind::Nor, "DIVZERO", &divisor)
        .expect("valid fanin");
    b.mark_output(divzero);
    let top_half: Vec<NodeId> = (0..n).map(|j| dividend[n + j]).collect();
    let eq_bits: Vec<NodeId> = top_half
        .iter()
        .zip(&divisor)
        .map(|(&d, &v)| b.gate_auto(GateKind::Xnor, &[d, v]).expect("valid fanin"))
        .collect();
    let ovfeq = {
        let tree = crate::cells::and_tree(&mut b, &eq_bits);
        b.gate(GateKind::Buf, "OVFEQ", &[tree]).expect("valid fanin")
    };
    b.mark_output(ovfeq);
    wrt_circuit::simplify(&b.build().expect("generator produces valid circuits"))
}

/// The paper's S2: combinational part of a divider.
///
/// We use a 24-bit divisor / 48-bit dividend array: its hardest signals
/// (`DIVZERO`, `OVFEQ`) sit at `2^-24`, giving the "starred" conventional
/// test length the paper reports for its 32-bit divider (see DESIGN.md §3
/// and EXPERIMENTS.md for the scale discussion).
pub fn s2() -> Circuit {
    crate::comparator::rename(array_divider(24), "s2")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn eval(c: &Circuit, assignment: &[bool]) -> Vec<bool> {
        let mut values = vec![false; c.num_nodes()];
        let mut buf = Vec::new();
        for (id, node) in c.iter() {
            values[id.index()] = match node.kind() {
                GateKind::Input => assignment[c.input_position(id).expect("pi")],
                kind => {
                    buf.clear();
                    buf.extend(node.fanin().iter().map(|f| values[f.index()]));
                    kind.eval(&buf)
                }
            };
        }
        c.outputs().iter().map(|&o| values[o.index()]).collect()
    }

    /// Runs the divider circuit and returns `(quotient, remainder)`.
    fn divide(c: &Circuit, n: usize, dividend: u64, divisor: u64) -> (u64, u64) {
        let mut assignment = Vec::new();
        for i in 0..2 * n {
            assignment.push((dividend >> i) & 1 == 1);
        }
        for i in 0..n {
            assignment.push((divisor >> i) & 1 == 1);
        }
        let out = eval(c, &assignment);
        let mut q = 0u64;
        for (i, &bit) in out.iter().enumerate().take(n) {
            if bit {
                q |= 1 << (n - 1 - i);
            }
        }
        let mut r = 0u64;
        for i in 0..=n {
            if out[n + i] {
                r |= 1 << i;
            }
        }
        (q, r)
    }

    #[test]
    fn four_bit_divider_is_exhaustively_correct() {
        let n = 4;
        let c = array_divider(n);
        for dividend in 0..64u64 {
            for divisor in 1..16u64 {
                let expect_q = dividend / divisor;
                if expect_q >= (1 << n) {
                    continue; // quotient overflow: undefined
                }
                let (q, r) = divide(&c, n, dividend, divisor);
                assert_eq!(q, expect_q, "{dividend} / {divisor}");
                assert_eq!(r, dividend % divisor, "{dividend} % {divisor}");
            }
        }
    }

    #[test]
    fn eight_bit_divider_spot_checks() {
        let n = 8;
        let c = array_divider(n);
        for (dd, dv) in [
            (40_000u64, 200u64),
            (60_000, 250),
            (12_345, 99),
            (255, 255),
            (0, 7),
            (510, 2),
        ] {
            if dd / dv >= (1 << n) {
                continue;
            }
            let (q, r) = divide(&c, n, dd, dv);
            assert_eq!((q, r), (dd / dv, dd % dv), "{dd} / {dv}");
        }
    }

    #[test]
    fn s2_shape() {
        let c = s2();
        assert_eq!(c.name(), "s2");
        assert_eq!(c.num_inputs(), 72); // 48 dividend + 24 divisor
        assert_eq!(c.num_outputs(), 51); // 24 quotient + 25 remainder + 2 flags
        assert!(c.num_gates() > 1500, "got {}", c.num_gates());
    }

    #[test]
    fn exception_outputs_fire_on_their_conditions() {
        let n = 4;
        let c = array_divider(n);
        let run = |dd: u64, dv: u64| {
            let mut assignment = Vec::new();
            for i in 0..2 * n {
                assignment.push((dd >> i) & 1 == 1);
            }
            for i in 0..n {
                assignment.push((dv >> i) & 1 == 1);
            }
            let out = eval(&c, &assignment);
            // outputs: Q(4), R(5), DIVZERO, OVFEQ
            (out[2 * n + 1], out[2 * n + 2])
        };
        assert_eq!(run(20, 0), (true, false));
        assert_eq!(run(20, 3), (false, false));
        // top half of 0xA7 is 0xA; divisor 0xA: OVFEQ fires.
        assert_eq!(run(0xA7, 0xA), (false, true));
    }

    #[test]
    fn divider_is_deep() {
        // The quotient/control chain makes the array deep.
        let c = array_divider(8);
        assert!(c.levels().depth() > 40, "depth {}", c.levels().depth());
    }
}

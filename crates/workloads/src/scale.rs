//! Tiled synthetic netlists for scale benchmarking.
//!
//! The paper's twelve circuits top out near 1.4k gates, far below the
//! million-gate scale the flat-memory core targets.  [`tiled`] composes
//! those registry workloads into arbitrarily large circuits: tiles are
//! instantiated into one shared netlist in rows, each row's tile inputs
//! stitched to the previous row's tile outputs (plus a deterministic
//! sprinkling of longer cross-row links for fanout stems and
//! reconvergence), until a target gate count is reached.
//!
//! The construction is lint-clean by design:
//!
//! * every stitch signal — primary inputs included — is either consumed
//!   by a later tile or marked as a primary output, so no floating
//!   inputs and no dead gates;
//! * tiles are replayed verbatim from the registry generators, which are
//!   themselves lint-clean, and composition preserves finite SCOAP
//!   controllabilities, so no constant-gate findings.
//!
//! Everything is deterministic by `(target_gates, seed)`: the same pair
//! always reproduces the identical netlist, node for node.

use wrt_circuit::{Circuit, CircuitBuilder, GateKind, NodeId};

/// Deterministic xorshift64* stream driving tile and stitch choices.
struct XorShift64(u64);

impl XorShift64 {
    fn new(seed: u64) -> Self {
        // Any nonzero state works; fold the seed so 0 and 1 diverge.
        XorShift64(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).max(1))
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }
}

/// Replays `tile` into the shared builder, wiring its primary inputs to
/// `drivers` (in input order) and returning the nodes its primary
/// outputs mapped to.  Gate names are prefixed by the tile instance
/// number, so instances never collide.
fn instantiate(
    b: &mut CircuitBuilder,
    tile: &Circuit,
    instance: usize,
    drivers: &[NodeId],
    map: &mut Vec<NodeId>,
) -> Vec<NodeId> {
    debug_assert_eq!(drivers.len(), tile.num_inputs());
    map.clear();
    for (id, node) in tile.iter() {
        let mapped = match node.kind() {
            GateKind::Input => drivers[tile.input_position(id).expect("tile input")],
            GateKind::Const0 => b.const0(),
            GateKind::Const1 => b.const1(),
            kind => {
                let fanin: Vec<NodeId> =
                    node.fanin().iter().map(|f| map[f.index()]).collect();
                b.gate(kind, format!("t{instance}n{}", id.index()), &fanin)
                    .expect("replaying a valid tile")
            }
        };
        debug_assert_eq!(map.len(), id.index());
        map.push(mapped);
    }
    tile.outputs().iter().map(|&o| map[o.index()]).collect()
}

/// Builds a tiled synthetic circuit of at least `target_gates` gates
/// (overshooting by at most one tile, < 1.5k gates), deterministic by
/// `(target_gates, seed)`.
///
/// The circuit is named `tiled_<target_gates>_<seed>` and is lint-clean
/// at every size (see the module docs for why).  Row width — and with it
/// the depth/width aspect ratio — scales with the target so depth stays
/// roughly constant across sizes.
///
/// # Example
///
/// ```
/// let a = wrt_workloads::tiled(10_000, 42);
/// let b = wrt_workloads::tiled(10_000, 42);
/// assert!(a.num_gates() >= 10_000);
/// assert_eq!(a.num_nodes(), b.num_nodes()); // deterministic by seed
/// ```
pub fn tiled(target_gates: usize, seed: u64) -> Circuit {
    let tiles: Vec<Circuit> = crate::all_paper_circuits();
    let mut rng = XorShift64::new(seed);
    let mut b = CircuitBuilder::named(format!("tiled_{target_gates}_{seed}"));

    // Row width scales with the target (roughly constant row count, so
    // depth stays comparable across sizes); the primary-input count is
    // capped and the first row is widened by fanout instead.
    let width = (target_gates / 128).clamp(64, 8192);
    let num_inputs = width.min(2048);
    let pis: Vec<NodeId> = (0..num_inputs).map(|i| b.input(format!("pi{i}"))).collect();

    // `history` holds every stitch signal ever produced (for cross-row
    // links); `leftovers` collects signals no tile consumed, to be
    // marked as primary outputs at the end.
    let mut history: Vec<NodeId> = pis.clone();
    let mut leftovers: Vec<NodeId> = Vec::new();
    let mut frontier = pis;
    let mut gates = 0usize;
    let mut instance = 0usize;
    let mut map = Vec::new();

    while gates < target_gates {
        // Replenish a narrow frontier by reusing row signals: the
        // duplicates become fanout stems when consumed again below.
        while frontier.len() < width {
            let pick = frontier[rng.below(frontier.len())];
            frontier.push(pick);
        }
        let mut next: Vec<NodeId> = Vec::new();
        let mut cursor = 0usize;
        while cursor < frontier.len() && gates < target_gates {
            let tile = &tiles[rng.below(tiles.len())];
            let mut drivers = Vec::with_capacity(tile.num_inputs());
            for _ in 0..tile.num_inputs() {
                // March through the frontier in order (so every stitch
                // wire is consumed), rewiring roughly every fourth
                // driver to a random historical signal for cross-row
                // fanout and reconvergence.
                if cursor < frontier.len() && rng.below(4) != 0 {
                    drivers.push(frontier[cursor]);
                    cursor += 1;
                } else {
                    drivers.push(history[rng.below(history.len())]);
                }
            }
            let outs = instantiate(&mut b, tile, instance, &drivers, &mut map);
            instance += 1;
            gates += tile.num_gates();
            history.extend(&outs);
            next.extend(outs);
        }
        // Frontier tail a target-hit cut short: never consumed, so PO.
        leftovers.extend(&frontier[cursor..]);
        frontier = next;
    }
    leftovers.extend(frontier);

    // Every unconsumed stitch signal becomes a primary output (sorted
    // and deduplicated: replenishment can alias frontier entries).
    leftovers.sort_unstable();
    leftovers.dedup();
    for id in leftovers {
        b.mark_output(id);
    }
    b.build().expect("tiled composition is structurally valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reaches_target_and_overshoots_at_most_one_tile() {
        let c = tiled(5_000, 1);
        assert!(c.num_gates() >= 5_000);
        assert!(c.num_gates() < 5_000 + 1_500, "overshoot bounded by one tile");
        assert_eq!(c.name(), "tiled_5000_1");
    }

    #[test]
    fn identical_parameters_reproduce_identical_netlists() {
        let a = tiled(4_000, 7);
        let b = tiled(4_000, 7);
        assert_eq!(a.num_nodes(), b.num_nodes());
        for (id, node) in a.iter() {
            let other = b.node(id);
            assert_eq!(node.kind(), other.kind());
            assert_eq!(node.fanin(), other.fanin());
            assert_eq!(node.name(), other.name());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = tiled(4_000, 1);
        let b = tiled(4_000, 2);
        let same = a.num_nodes() == b.num_nodes()
            && a.iter().all(|(id, n)| {
                let o = b.node(id);
                n.kind() == o.kind() && n.fanin() == o.fanin()
            });
        assert!(!same, "seeds 1 and 2 produced the same netlist");
    }

    #[test]
    fn every_signal_is_consumed_or_observed() {
        let c = tiled(3_000, 3);
        for (id, node) in c.iter() {
            assert!(
                !c.fanout(id).is_empty() || c.is_output(id),
                "{} is dead (kind {:?})",
                node.name(),
                node.kind()
            );
        }
    }
}

//! Error-correcting-code circuits standing in for C499/C1355/C1908.
//!
//! C499 is a 32-bit single-error-correction (SEC) network; C1355 is the
//! same function with every XOR expanded into four NANDs; C1908 is a
//! 16-bit SEC/DED network.  We generate Hamming-style SEC logic: syndrome
//! computation (XOR trees over the code's parity groups), a syndrome
//! decoder (one wide AND per data bit), and the correction stage
//! (data XOR correction).

use wrt_circuit::{Circuit, CircuitBuilder, GateKind, NodeId};

use crate::cells::{xor_from_nands, xor_tree};

/// How XOR functions are realized.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum XorStyle {
    /// Native XOR gates (C499 style).
    Native,
    /// Four-NAND expansion per 2-input XOR (C1355 style).
    Nands,
}

/// Builds an XOR over `leaves` in the requested style.
fn styled_xor(b: &mut CircuitBuilder, leaves: &[NodeId], style: XorStyle) -> NodeId {
    match style {
        XorStyle::Native => xor_tree(b, leaves),
        XorStyle::Nands => {
            let mut layer: Vec<NodeId> = leaves.to_vec();
            while layer.len() > 1 {
                let mut next = Vec::with_capacity(layer.len().div_ceil(2));
                for pair in layer.chunks(2) {
                    next.push(match pair {
                        [x, y] => xor_from_nands(b, *x, *y),
                        [x] => *x,
                        _ => unreachable!(),
                    });
                }
                layer = next;
            }
            layer[0]
        }
    }
}

/// Single-error-correcting decoder over `data_bits` data inputs.
///
/// Inputs: `D0..` data bits and `C0..` received check bits.  Outputs: the
/// corrected data word `O0..` plus an `ERR` flag (OR of the syndrome).
///
/// Classic Hamming positioning: data bit *i* occupies the *i*-th
/// non-power-of-two codeword position (3, 5, 6, 7, 9, …) and belongs to
/// parity group *j* iff bit *j* of its position is set; check bit *j*
/// occupies position `2^j`.  A check-bit error therefore yields a
/// power-of-two syndrome that matches no data decode line: it is flagged
/// but never corrupts data.
///
/// # Panics
///
/// Panics if `data_bits == 0`.
pub fn sec_circuit(data_bits: usize, style: XorStyle) -> Circuit {
    assert!(data_bits > 0, "need at least one data bit");
    let sbits = syndrome_width(data_bits);
    let positions: Vec<usize> = hamming_positions(data_bits);
    let mut b = CircuitBuilder::named(format!("sec{data_bits}"));
    let data: Vec<NodeId> = (0..data_bits).map(|i| b.input(format!("D{i}"))).collect();
    let check: Vec<NodeId> = (0..sbits).map(|j| b.input(format!("C{j}"))).collect();

    // Syndrome bit j = parity of the group XOR the received check bit.
    let mut syndrome = Vec::with_capacity(sbits);
    for (j, &cj) in check.iter().enumerate() {
        let mut group: Vec<NodeId> = data
            .iter()
            .enumerate()
            .filter(|(i, _)| positions[*i] >> j & 1 == 1)
            .map(|(_, &d)| d)
            .collect();
        group.push(cj);
        syndrome.push(styled_xor(&mut b, &group, style));
    }
    let nsyndrome: Vec<NodeId> = syndrome
        .iter()
        .map(|&s| b.not(s).expect("valid fanin"))
        .collect();

    // Decode: data bit i flips when the syndrome equals its position.
    for (i, &d) in data.iter().enumerate() {
        let code = positions[i];
        let fanin: Vec<NodeId> = (0..sbits)
            .map(|j| {
                if code >> j & 1 == 1 {
                    syndrome[j]
                } else {
                    nsyndrome[j]
                }
            })
            .collect();
        let flip = b.gate_auto(GateKind::And, &fanin).expect("valid fanin");
        let corrected = match style {
            XorStyle::Native => b.xor2(d, flip).expect("valid fanin"),
            XorStyle::Nands => xor_from_nands(&mut b, d, flip),
        };
        let out = b
            .gate(GateKind::Buf, format!("O{i}"), &[corrected])
            .expect("valid fanin");
        b.mark_output(out);
    }
    let err = b.gate(GateKind::Or, "ERR", &syndrome).expect("valid fanin");
    b.mark_output(err);
    b.build().expect("generator produces valid circuits")
}

/// The first `data_bits` non-power-of-two codeword positions.
fn hamming_positions(data_bits: usize) -> Vec<usize> {
    (3usize..)
        .filter(|p| !p.is_power_of_two())
        .take(data_bits)
        .collect()
}

/// Number of check bits needed: enough that the largest data position
/// fits in the syndrome.
fn syndrome_width(data_bits: usize) -> usize {
    let max_pos = *hamming_positions(data_bits)
        .last()
        .expect("data_bits > 0");
    usize::BITS as usize - max_pos.leading_zeros() as usize
}

/// C499 analogue: 32-bit SEC with native XOR gates.
pub fn c499ish() -> Circuit {
    crate::comparator::rename(sec_circuit(32, XorStyle::Native), "c499ish")
}

/// C1355 analogue: the same function as [`c499ish`] with every XOR
/// expanded into four NANDs (exactly the C499 → C1355 relationship).
pub fn c1355ish() -> Circuit {
    crate::comparator::rename(sec_circuit(32, XorStyle::Nands), "c1355ish")
}

/// C1908 analogue: mid-size SEC network with NAND-expanded XORs.
pub fn c1908ish() -> Circuit {
    crate::comparator::rename(sec_circuit(25, XorStyle::Nands), "c1908ish")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn eval(c: &Circuit, assignment: &[bool]) -> Vec<bool> {
        let mut values = vec![false; c.num_nodes()];
        let mut buf = Vec::new();
        for (id, node) in c.iter() {
            values[id.index()] = match node.kind() {
                GateKind::Input => assignment[c.input_position(id).expect("pi")],
                kind => {
                    buf.clear();
                    buf.extend(node.fanin().iter().map(|f| values[f.index()]));
                    kind.eval(&buf)
                }
            };
        }
        c.outputs().iter().map(|&o| values[o.index()]).collect()
    }

    /// Encodes `data` into check bits per the circuit's parity groups.
    fn encode(data: u64, data_bits: usize) -> Vec<bool> {
        let sbits = syndrome_width(data_bits);
        let positions = hamming_positions(data_bits);
        (0..sbits)
            .map(|j| {
                (0..data_bits)
                    .filter(|&i| positions[i] >> j & 1 == 1)
                    .fold(false, |acc, i| acc ^ ((data >> i) & 1 == 1))
            })
            .collect()
    }

    fn run(c: &Circuit, data_bits: usize, data: u64, check: &[bool]) -> (u64, bool) {
        let mut assignment: Vec<bool> = (0..data_bits).map(|i| (data >> i) & 1 == 1).collect();
        assignment.extend_from_slice(check);
        let out = eval(c, &assignment);
        let mut corrected = 0u64;
        for (i, &bit) in out.iter().enumerate().take(data_bits) {
            if bit {
                corrected |= 1 << i;
            }
        }
        (corrected, out[data_bits])
    }

    #[test]
    fn clean_word_passes_through() {
        for style in [XorStyle::Native, XorStyle::Nands] {
            let c = sec_circuit(11, style);
            for data in [0u64, 0x7FF, 0x2A5, 0x400] {
                let check = encode(data, 11);
                let (out, err) = run(&c, 11, data, &check);
                assert_eq!(out, data, "{style:?} clean {data:#x}");
                assert!(!err);
            }
        }
    }

    #[test]
    fn single_data_error_is_corrected() {
        for style in [XorStyle::Native, XorStyle::Nands] {
            let c = sec_circuit(11, style);
            let data = 0x5A3u64;
            let check = encode(data, 11);
            for flip in 0..11 {
                let corrupted = data ^ (1 << flip);
                let (out, err) = run(&c, 11, corrupted, &check);
                assert_eq!(out, data, "{style:?} flip bit {flip}");
                assert!(err, "{style:?} error flagged");
            }
        }
    }

    #[test]
    fn check_bit_error_flags_but_does_not_corrupt() {
        // A flipped check bit gives a power-of-two syndrome, which matches
        // no data decode line: data passes through, ERR is raised.
        let c = sec_circuit(11, XorStyle::Native);
        let data = 0x123u64;
        let clean = encode(data, 11);
        for j in 0..clean.len() {
            let mut check = clean.clone();
            check[j] = !check[j];
            let (out, err) = run(&c, 11, data, &check);
            assert_eq!(out, data, "check bit {j}");
            assert!(err, "check bit {j}");
        }
    }

    #[test]
    fn family_shapes() {
        let c499 = c499ish();
        assert_eq!(c499.num_inputs(), 32 + 6);
        assert_eq!(c499.num_outputs(), 33);
        let c1355 = c1355ish();
        assert!(
            c1355.num_gates() > 2 * c499.num_gates(),
            "NAND expansion grows the netlist: {} vs {}",
            c1355.num_gates(),
            c499.num_gates()
        );
        let c1908 = c1908ish();
        assert!(c1908.num_gates() > 200);
    }

    #[test]
    fn nand_style_contains_no_xor_gates_in_syndrome() {
        let c = c1355ish();
        let xor_count = c
            .iter()
            .filter(|(_, n)| matches!(n.kind(), GateKind::Xor | GateKind::Xnor))
            .count();
        assert_eq!(xor_count, 0, "C1355-style circuit must be XOR-free");
    }
}

//! Fault-coverage bookkeeping and coverage-vs-pattern-count curves.

use std::fmt;

/// Result of a fault-coverage simulation run.
///
/// Records, for every fault of the simulated list, the index of the first
/// detecting pattern (or `None`).  The coverage *curve* — fault coverage as
/// a function of applied pattern count, the quantity plotted in the paper's
/// Fig. 2 — is derived from these first-detection indices.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CoverageResult {
    detected_at: Vec<Option<u64>>,
    num_patterns: u64,
}

impl CoverageResult {
    /// Builds a result from first-detection indices.
    pub fn new(detected_at: Vec<Option<u64>>, num_patterns: u64) -> Self {
        CoverageResult {
            detected_at,
            num_patterns,
        }
    }

    /// First-detection pattern index per fault (`None` = undetected).
    pub fn detected_at(&self) -> &[Option<u64>] {
        &self.detected_at
    }

    /// Number of patterns applied.
    pub fn num_patterns(&self) -> u64 {
        self.num_patterns
    }

    /// Number of faults in the simulated list.
    pub fn num_faults(&self) -> usize {
        self.detected_at.len()
    }

    /// Number of detected faults.
    pub fn num_detected(&self) -> usize {
        self.detected_at.iter().filter(|d| d.is_some()).count()
    }

    /// Final fault coverage in `[0, 1]` (1.0 for an empty fault list).
    pub fn coverage(&self) -> f64 {
        if self.detected_at.is_empty() {
            return 1.0;
        }
        self.num_detected() as f64 / self.detected_at.len() as f64
    }

    /// Coverage after the first `n` patterns.
    pub fn coverage_after(&self, n: u64) -> f64 {
        if self.detected_at.is_empty() {
            return 1.0;
        }
        let hit = self
            .detected_at
            .iter()
            .filter(|d| matches!(d, Some(i) if *i < n))
            .count();
        hit as f64 / self.detected_at.len() as f64
    }

    /// The coverage curve sampled at the given pattern counts.
    pub fn curve(&self, samples: &[u64]) -> CoverageCurve {
        CoverageCurve {
            points: samples
                .iter()
                .map(|&n| (n, self.coverage_after(n)))
                .collect(),
        }
    }

    /// The coverage curve sampled at logarithmically spaced points
    /// (plus the final pattern count).
    pub fn log_curve(&self, points_per_decade: u32) -> CoverageCurve {
        let mut samples = vec![];
        let mut x = 1.0f64;
        while (x as u64) < self.num_patterns {
            samples.push(x as u64);
            x *= 10f64.powf(1.0 / f64::from(points_per_decade));
        }
        samples.push(self.num_patterns);
        samples.dedup();
        self.curve(&samples)
    }
}

impl fmt::Display for CoverageResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}/{} faults detected ({:.1} %) after {} patterns",
            self.num_detected(),
            self.num_faults(),
            self.coverage() * 100.0,
            self.num_patterns
        )
    }
}

/// A sampled fault-coverage-vs-pattern-count curve.
#[derive(Debug, Clone, PartialEq)]
pub struct CoverageCurve {
    /// `(pattern count, coverage)` pairs in increasing pattern count.
    pub points: Vec<(u64, f64)>,
}

impl CoverageCurve {
    /// True if this curve is everywhere ≥ `other` at the sampled points
    /// shared by both curves.
    pub fn dominates(&self, other: &CoverageCurve) -> bool {
        self.points.iter().all(|&(n, c)| {
            other
                .points
                .iter()
                .find(|&&(m, _)| m == n)
                .is_none_or(|&(_, oc)| c >= oc)
        })
    }
}

impl fmt::Display for CoverageCurve {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for &(n, c) in &self.points {
            writeln!(f, "{n:>10}  {:6.2} %", c * 100.0)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coverage_accounting() {
        let r = CoverageResult::new(vec![Some(0), Some(10), None, Some(99)], 100);
        assert_eq!(r.num_detected(), 3);
        assert_eq!(r.coverage(), 0.75);
        assert_eq!(r.coverage_after(0), 0.0);
        assert_eq!(r.coverage_after(1), 0.25);
        assert_eq!(r.coverage_after(11), 0.5);
        assert_eq!(r.coverage_after(100), 0.75);
    }

    #[test]
    fn empty_list_is_fully_covered() {
        let r = CoverageResult::new(vec![], 10);
        assert_eq!(r.coverage(), 1.0);
        assert_eq!(r.coverage_after(5), 1.0);
    }

    #[test]
    fn curve_is_monotone() {
        let r = CoverageResult::new(vec![Some(3), Some(7), Some(50), None], 64);
        let curve = r.curve(&[1, 4, 8, 64]);
        for w in curve.points.windows(2) {
            assert!(w[1].1 >= w[0].1);
        }
    }

    #[test]
    fn log_curve_ends_at_num_patterns() {
        let r = CoverageResult::new(vec![Some(3)], 1000);
        let curve = r.log_curve(2);
        assert_eq!(curve.points.last().expect("non-empty").0, 1000);
    }

    #[test]
    fn dominance_check() {
        let hi = CoverageCurve {
            points: vec![(1, 0.5), (10, 0.9)],
        };
        let lo = CoverageCurve {
            points: vec![(1, 0.2), (10, 0.9)],
        };
        assert!(hi.dominates(&lo));
        assert!(!lo.dominates(&hi));
    }

    #[test]
    fn display_formats() {
        let r = CoverageResult::new(vec![Some(0), None], 10);
        let s = format!("{r}");
        assert!(s.contains("1/2"));
        assert!(s.contains("50.0 %"));
    }
}

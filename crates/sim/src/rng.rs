//! Deterministic pseudo-random number generation.
//!
//! The workspace deliberately avoids external RNG crates in library code so
//! that every reported number is bit-reproducible across platforms and
//! dependency upgrades.  [`Xoshiro256`] implements xoshiro256** (Blackman &
//! Vigna), seeded through SplitMix64 — the standard recommendation for
//! expanding a 64-bit seed.

/// xoshiro256** pseudo-random generator.
///
/// Not cryptographically secure; statistically excellent and extremely fast,
/// which is what pattern generation and Monte-Carlo estimation need.
///
/// # Example
///
/// ```
/// use wrt_sim::Xoshiro256;
/// let mut a = Xoshiro256::seed_from(7);
/// let mut b = Xoshiro256::seed_from(7);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Xoshiro256 {
    s: [u64; 4],
}

impl Xoshiro256 {
    /// Creates a generator from a 64-bit seed via SplitMix64 expansion.
    pub fn seed_from(seed: u64) -> Self {
        let mut sm = seed;
        let mut next_sm = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let s = [next_sm(), next_sm(), next_sm(), next_sm()];
        Xoshiro256 { s }
    }

    /// The next 64 uniform random bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1]
            .wrapping_mul(5)
            .rotate_left(7)
            .wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// A uniform `f64` in `[0, 1)` with 53 bits of precision.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A word whose 64 bits are each independently 1 with probability `p`.
    ///
    /// Dyadic probabilities `p = m / 2^k` (k ≤ 32) take an exact fast
    /// path: one uniform word per binary digit of `p`, folded with the
    /// standard AND/OR digit construction — processing the digits from
    /// least to most significant, `word := uniform OR word` realizes a
    /// 1-digit and `word := uniform AND word` a 0-digit, which halves and
    /// shifts the accumulated probability so that each lane is 1 with
    /// *exactly* probability `p`.  `p = 0.5` therefore still costs a
    /// single draw, `0.25` two, and the optimizer-relevant dyadic grid
    /// never touches the scalar path.  Non-dyadic `p` falls back to
    /// comparing a fresh 53-bit uniform draw against `p` per bit;
    /// exactness of the per-bit probability matters more here than
    /// throughput, since weighted patterns drive all coverage experiments.
    ///
    /// # Boundary behavior
    ///
    /// The dyadic grid's boundary points `m = 0` (`p ≤ 0.0`) and
    /// `m = 2^k` (`p ≥ 1.0`) are unreachable inside the digit
    /// construction — `p ∈ (0, 1)` strictly implies `m ∈ [1, 2^32 − 1]`
    /// — so they are realized by the early returns below: a constant
    /// word, zero draws, generator state untouched.  Lane-wise this is
    /// exactly what the scalar compare path would produce (`next_f64()`
    /// lies in `[0, 1)`, so `< 0.0` never and `< 1.0` always holds); the
    /// draw-count difference (0 vs 64) is the same documented
    /// state-advance contract as the rest of the dyadic fast path.  NaN
    /// is treated as weight 0 here rather than falling through to the
    /// scalar path, where `next_f64() < NaN` would burn 64 draws to
    /// produce the same all-zero word.  Exhaustive boundary tests below
    /// pin all of this down.
    pub fn weighted_word(&mut self, p: f64) -> u64 {
        if p <= 0.0 || p.is_nan() {
            return 0;
        }
        if p >= 1.0 {
            return u64::MAX;
        }
        // Scaling by a power of two is exact in IEEE-754, so a zero
        // fractional part identifies p = m / 2^32 without error.
        let scaled = p * (1u64 << 32) as f64;
        if scaled.fract() == 0.0 {
            let mut m = scaled as u64;
            let flat = m.trailing_zeros();
            m >>= flat; // p = m / 2^k with m odd
            let k = 32 - flat;
            let mut word = 0u64;
            for digit in 0..k {
                let uniform = self.next_u64();
                word = if (m >> digit) & 1 == 1 {
                    uniform | word
                } else {
                    uniform & word
                };
            }
            return word;
        }
        let mut word = 0u64;
        for bit in 0..64 {
            word |= u64::from(self.next_f64() < p) << bit;
        }
        word
    }

    /// Derives an independent generator (jump by reseeding through the
    /// output stream; adequate for test decorrelation).
    pub fn fork(&mut self) -> Xoshiro256 {
        Xoshiro256::seed_from(self.next_u64())
    }

    /// The raw generator state, for checkpointing.  Restoring it with
    /// [`Xoshiro256::from_state`] resumes the output stream exactly where
    /// it left off — required for bit-identical resume of runs whose RNG
    /// consumption depends on data (e.g. ATPG random fill draws one word
    /// per don't-care bit).
    pub fn state(&self) -> [u64; 4] {
        self.s
    }

    /// Rebuilds a generator from a [`Xoshiro256::state`] snapshot.
    pub fn from_state(s: [u64; 4]) -> Self {
        Xoshiro256 { s }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = Xoshiro256::seed_from(123);
        let mut b = Xoshiro256::seed_from(123);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Xoshiro256::seed_from(1);
        let mut b = Xoshiro256::seed_from(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn f64_is_in_unit_interval() {
        let mut r = Xoshiro256::seed_from(99);
        for _ in 0..10_000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn uniform_bits_are_roughly_balanced() {
        let mut r = Xoshiro256::seed_from(7);
        let ones: u32 = (0..1000).map(|_| r.next_u64().count_ones()).sum();
        let total = 64_000.0;
        let frac = f64::from(ones) / total;
        assert!((0.48..0.52).contains(&frac), "frac = {frac}");
    }

    #[test]
    fn weighted_word_tracks_probability() {
        let mut r = Xoshiro256::seed_from(11);
        for &p in &[0.05, 0.25, 0.5, 0.8, 0.95] {
            let ones: u32 = (0..2000).map(|_| r.weighted_word(p).count_ones()).sum();
            let frac = f64::from(ones) / 128_000.0;
            assert!(
                (frac - p).abs() < 0.01,
                "p = {p}, measured = {frac}"
            );
        }
    }

    #[test]
    fn dyadic_fast_path_tracks_probability() {
        let mut r = Xoshiro256::seed_from(23);
        for &(p, digits) in &[
            (0.5, 1u32),
            (0.25, 2),
            (0.75, 2),
            (0.375, 3),
            (0.9375, 4),
            (1.0 / 1024.0, 10),
            (1.0 - 1.0 / 4096.0, 12),
        ] {
            let words = 4000u32;
            let ones: u64 = (0..words)
                .map(|_| u64::from(r.weighted_word(p).count_ones()))
                .sum();
            let total = f64::from(words) * 64.0;
            let frac = ones as f64 / total;
            let sigma = (p * (1.0 - p) / total).sqrt();
            assert!(
                (frac - p).abs() < 6.0 * sigma.max(1e-4),
                "p = {p} ({digits} digits), measured = {frac}"
            );
        }
    }

    #[test]
    fn dyadic_fast_path_consumes_one_draw_per_digit() {
        // p = 3/8 has three binary digits: the generator state must
        // advance by exactly three uniform words (the legacy scalar path
        // burned 64 draws for any non-half p).
        let mut a = Xoshiro256::seed_from(555);
        let mut b = a.clone();
        let _ = a.weighted_word(0.375);
        for _ in 0..3 {
            b.next_u64();
        }
        assert_eq!(a, b);
        // And p = 0.5 still costs a single draw.
        let _ = a.weighted_word(0.5);
        b.next_u64();
        assert_eq!(a, b);
    }

    #[test]
    fn non_dyadic_p_uses_the_exact_scalar_path() {
        // 0.3 is not representable as m / 2^32: one 53-bit comparison per
        // bit, i.e. 64 draws.
        let mut a = Xoshiro256::seed_from(9);
        let mut b = a.clone();
        let _ = a.weighted_word(0.3);
        for _ in 0..64 {
            b.next_u64();
        }
        assert_eq!(a, b);
    }

    #[test]
    fn weighted_word_extremes_are_exact() {
        let mut r = Xoshiro256::seed_from(3);
        assert_eq!(r.weighted_word(0.0), 0);
        assert_eq!(r.weighted_word(1.0), u64::MAX);
        assert_eq!(r.weighted_word(-0.5), 0);
        assert_eq!(r.weighted_word(1.5), u64::MAX);
    }

    #[test]
    fn boundary_weights_consume_no_draws() {
        // m = 0 and m = 2^k (p = 0.0 / 1.0) are answered by the early
        // returns: constant word, generator state untouched — so a
        // boundary-weighted input never shifts the stream of the inputs
        // drawn after it.
        let mut r = Xoshiro256::seed_from(77);
        let reference = r.clone();
        for p in [0.0, 1.0, -1.0, 2.0, f64::NAN, f64::NEG_INFINITY, f64::INFINITY] {
            let word = r.weighted_word(p);
            assert!(word == 0 || word == u64::MAX, "p = {p}");
            assert_eq!(r, reference, "p = {p} must not advance the state");
        }
        // NaN counts as weight 0 (it used to take the 64-draw scalar
        // path to produce the same all-zero word).
        assert_eq!(r.weighted_word(f64::NAN), 0);
    }

    #[test]
    fn boundary_weights_match_the_scalar_compare_path_lanewise() {
        // The scalar path compares next_f64() ∈ [0, 1) against p: at the
        // boundaries the comparison is constant, so the fast path's
        // constant words are lane-for-lane what the scalar path would
        // emit.  Verify against an explicit scalar-path replica.
        let mut r = Xoshiro256::seed_from(101);
        for &(p, expect) in &[(0.0f64, 0u64), (1.0, u64::MAX)] {
            let mut replica = r.clone();
            let mut scalar_word = 0u64;
            for bit in 0..64 {
                scalar_word |= u64::from(replica.next_f64() < p) << bit;
            }
            assert_eq!(scalar_word, expect, "scalar path at p = {p}");
            assert_eq!(r.weighted_word(p), expect, "fast path at p = {p}");
        }
    }

    #[test]
    fn exhaustive_dyadic_grid_boundaries_and_draw_counts() {
        // Every m / 2^k for k ≤ 6 (boundaries m = 0 and m = 2^k
        // included): the fast path must consume exactly
        // k − trailing_zeros(m) draws (0 at the boundaries) and track
        // the exact probability.
        for k in 1u32..=6 {
            let denom = 1u64 << k;
            for m in 0..=denom {
                let p = m as f64 / denom as f64;
                let expected_draws = if m == 0 || m == denom {
                    0
                } else {
                    k - m.trailing_zeros()
                };
                let mut a = Xoshiro256::seed_from(1000 + m * 64 + u64::from(k));
                let mut b = a.clone();
                let words = 800u32;
                let mut ones = 0u64;
                for _ in 0..words {
                    ones += u64::from(a.weighted_word(p).count_ones());
                    for _ in 0..expected_draws {
                        b.next_u64();
                    }
                    assert_eq!(a, b, "p = {m}/{denom}: draw count mismatch");
                }
                let total = f64::from(words) * 64.0;
                let frac = ones as f64 / total;
                let sigma = (p * (1.0 - p) / total).sqrt();
                assert!(
                    (frac - p).abs() <= 6.0 * sigma.max(1e-4),
                    "p = {m}/{denom}: measured {frac}"
                );
            }
        }
    }

    #[test]
    fn half_weight_is_stream_identical_to_the_raw_generator() {
        // p = 0.5 is the single-digit dyadic case: the word *is* the
        // next uniform word, bit for bit.
        let mut a = Xoshiro256::seed_from(2024);
        let mut b = a.clone();
        for _ in 0..32 {
            assert_eq!(a.weighted_word(0.5), b.next_u64());
        }
    }

    #[test]
    fn near_boundary_dyadics_use_the_full_digit_budget() {
        // The extreme representable dyadics 1/2^32 and 1 − 1/2^32 sit
        // one grid step inside the m = 0 / m = 2^32 boundaries: both
        // take the 32-digit fast path (m odd), not the early returns and
        // not the 64-draw scalar fallback.
        let lo = 1.0 / 4294967296.0;
        let hi = 1.0 - lo;
        for p in [lo, hi] {
            let mut a = Xoshiro256::seed_from(8);
            let mut b = a.clone();
            let _ = a.weighted_word(p);
            for _ in 0..32 {
                b.next_u64();
            }
            assert_eq!(a, b, "p = {p} must cost exactly 32 draws");
        }
        // And their lane statistics stay one-sided as expected.
        let mut r = Xoshiro256::seed_from(21);
        let lo_ones: u64 = (0..4000)
            .map(|_| u64::from(r.weighted_word(lo).count_ones()))
            .sum();
        assert!(lo_ones <= 2, "P(one) = 2^-32 over 256k lanes: {lo_ones}");
        let hi_zeros: u64 = (0..4000)
            .map(|_| u64::from(r.weighted_word(hi).count_zeros()))
            .sum();
        assert!(hi_zeros <= 2, "P(zero) = 2^-32 over 256k lanes: {hi_zeros}");
    }

    #[test]
    fn state_snapshot_resumes_the_stream_exactly() {
        let mut a = Xoshiro256::seed_from(404);
        for _ in 0..17 {
            a.next_u64();
        }
        let snapshot = a.state();
        let tail: Vec<u64> = (0..32).map(|_| a.next_u64()).collect();
        let mut resumed = Xoshiro256::from_state(snapshot);
        let resumed_tail: Vec<u64> = (0..32).map(|_| resumed.next_u64()).collect();
        assert_eq!(tail, resumed_tail);
    }

    #[test]
    fn fork_produces_decorrelated_stream() {
        let mut a = Xoshiro256::seed_from(5);
        let mut c = a.fork();
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_ne!(xs, ys);
    }
}

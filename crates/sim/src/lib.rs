//! Bit-parallel logic simulation and stuck-at fault simulation.
//!
//! This crate is the "fault simulation" substrate of the paper's
//! evaluation (Tables 2 and 4, Fig. 2): a 64-way bit-parallel logic
//! simulator ([`LogicSim`]), weighted random pattern sources
//! ([`WeightedPatterns`]), and a parallel-pattern single-fault-propagation
//! (PPSFP) fault simulator ([`FaultSimulator`]) with optional fault
//! dropping and coverage-curve recording.
//!
//! All randomness is deterministic and seed-driven ([`Xoshiro256`]), so
//! every experiment in the workspace is bit-reproducible.
//!
//! # Example
//!
//! ```
//! use wrt_circuit::parse_bench;
//! use wrt_fault::FaultList;
//! use wrt_sim::{fault_coverage, WeightedPatterns};
//!
//! # fn main() -> Result<(), wrt_circuit::ParseBenchError> {
//! let c = parse_bench("INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = AND(a, b)\n")?;
//! let faults = FaultList::checkpoints(&c);
//! let source = WeightedPatterns::equiprobable(c.num_inputs(), 42);
//! let result = fault_coverage(&c, &faults, source, 256, true);
//! assert_eq!(result.coverage(), 1.0);
//! # Ok(())
//! # }
//! ```

mod coverage;
mod fault_sim;
mod logic;
mod multiple;
mod patterns;
mod rng;

pub use coverage::{CoverageCurve, CoverageResult};
pub use fault_sim::{detection_counts, fault_coverage, FaultSimulator};
pub use multiple::{detect_multiple, multiple_fault_coverage, random_multiples};
pub use logic::{eval_gate_words, simulate_pattern, LogicSim};
pub use patterns::{ExhaustivePatterns, PatternBlock, PatternSource, WeightedPatterns};
pub use rng::Xoshiro256;

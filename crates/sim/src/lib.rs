//! Bit-parallel logic simulation and stuck-at fault simulation.
//!
//! This crate is the "fault simulation" substrate of the paper's
//! evaluation (Tables 2 and 4, Fig. 2): a 64-way bit-parallel logic
//! simulator ([`LogicSim`]), weighted random pattern sources
//! ([`WeightedPatterns`]), and a parallel-pattern single-fault-propagation
//! (PPSFP) fault simulator ([`FaultSimulator`]) with optional fault
//! dropping and coverage-curve recording.
//!
//! All randomness is deterministic and seed-driven ([`Xoshiro256`]), so
//! every experiment in the workspace is bit-reproducible.
//!
//! # Engines
//!
//! Two PPSFP inner loops share one contract (selected via [`SimOptions`],
//! results always bit-identical):
//!
//! * **dense** ([`FaultSimulator`]) — one `u64` block, per-fault cone
//!   walk; the simple reference engine.
//! * **event** ([`EventSimulator`]) — event-driven sparse propagation
//!   over `W`-word superblocks ([`SuperBlock`], `W ∈ {1, 2, 4, 8, 16}`):
//!   only nodes actually reached by the fault effect are evaluated, and
//!   each evaluation covers `64 * W` patterns.  See [`EventSimulator`]
//!   for the ready-set invariants.
//!
//! On top of both sits the **2D tiled engine** ([`fault_coverage_tiled`]):
//! fault-shard × pattern-stripe tiles pulled from a work-stealing queue,
//! with high-reach faults peeled off into shared dense multi-fault batch
//! passes ([`BatchMode`]).  Bit-identical to serial for every thread
//! count, stripe size, and steal order — see the `tile` module docs.
//!
//! [`fault_coverage_opts`] / [`detection_counts_opts`] (and their
//! `_sharded_opts` variants) run the configured engine and also report
//! machine-independent work counters ([`SimStats`]) — the metrics
//! `BENCH_sim.json` tracks.
//!
//! # Sharded PPSFP
//!
//! The serial entry points ([`fault_coverage`], [`detection_counts`]) have
//! sharded counterparts ([`fault_coverage_sharded`],
//! [`detection_counts_sharded`]) that fan the fault list out over worker
//! threads:
//!
//! 1. the collapsed fault list is partitioned into cone-locality-aware,
//!    cost-balanced shards (`wrt_fault::FaultPartition`) — faults sharing
//!    an effect root share a shard, so each worker's cone cache stays as
//!    deduplicated as the serial simulator's;
//! 2. each shard gets a `std::thread::scope` worker owning a private
//!    [`FaultSimulator`] (scratch state, good-value buffers) and a
//!    compacted [`FaultWorklist`] that swap-removes faults on detection,
//!    so late blocks only touch still-undetected faults;
//! 3. the main thread draws blocks from the sequential, seed-deterministic
//!    pattern source and broadcasts them in bounded chunks; workers that
//!    drain their worklist hang up early.
//!
//! Merging per-shard results by fault id makes the sharded engine
//! bit-identical to the serial one for every thread count (a property-
//! tested invariant), while the fault-parallel fan-out scales the paper's
//! Monte-Carlo estimation and validation loops across cores.
//!
//! # Example
//!
//! ```
//! use wrt_circuit::parse_bench;
//! use wrt_fault::FaultList;
//! use wrt_sim::{fault_coverage, WeightedPatterns};
//!
//! # fn main() -> Result<(), wrt_circuit::ParseBenchError> {
//! let c = parse_bench("INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = AND(a, b)\n")?;
//! let faults = FaultList::checkpoints(&c);
//! let source = WeightedPatterns::equiprobable(c.num_inputs(), 42);
//! let result = fault_coverage(&c, &faults, source, 256, true);
//! assert_eq!(result.coverage(), 1.0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]

mod coverage;
mod event;
mod fault_sim;
mod logic;
mod multiple;
mod parallel;
mod patterns;
mod rng;
mod robust;
#[cfg(test)]
mod test_support;
mod tile;

pub use coverage::{CoverageCurve, CoverageResult};
pub use event::{
    count_set_bits, detection_counts_opts, fault_coverage_opts, first_set_bit, superblock_split,
    EventSimulator, FaultEvalProfile, SimEngineKind, SimOptions, SimStats, SuperBlock,
    SUPPORTED_BLOCK_WORDS,
};
pub use tile::{
    detection_counts_tiled, fault_coverage_tiled, fault_coverage_tiled_robust, BatchMode,
    RobustTiledCoverage, TileOptions, TileStats,
};
pub use fault_sim::{detection_counts, fault_coverage, FaultSimulator, FaultWorklist};
pub use parallel::{
    available_threads, detection_counts_sharded, detection_counts_sharded_opts,
    fault_coverage_sharded, fault_coverage_sharded_opts, recommended_threads, ShardRecovery,
};
pub use robust::{
    detection_counts_robust, fault_coverage_robust, RobustCounts, RobustCoverage,
};
pub use multiple::{detect_multiple, multiple_fault_coverage, random_multiples};
pub use logic::{eval_gate_lanes, eval_gate_words, simulate_pattern, LogicSim, WideLogicSim};
pub use patterns::{ExhaustivePatterns, PatternBlock, PatternSource, WeightedPatterns};
pub use rng::Xoshiro256;

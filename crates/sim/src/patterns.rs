//! Random pattern sources.
//!
//! A pattern source produces blocks of up to 64 test patterns in
//! bit-parallel layout: one `u64` per primary input, bit *j* of each word
//! belonging to pattern *j*.  The central implementation is
//! [`WeightedPatterns`], which realizes the paper's *unequiprobable* random
//! patterns: input *i* is 1 with its own probability `x_i`.

use crate::rng::Xoshiro256;

/// One block of up to 64 bit-parallel patterns.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PatternBlock {
    /// One word per primary input; bit *j* = value of that input in
    /// pattern *j*.
    pub words: Vec<u64>,
    /// Number of valid patterns in this block (1..=64).
    pub len: u32,
}

impl PatternBlock {
    /// Mask with `len` low bits set: the valid-pattern positions.
    pub fn mask(&self) -> u64 {
        if self.len >= 64 {
            u64::MAX
        } else {
            (1u64 << self.len) - 1
        }
    }

    /// Extracts pattern `j` as a vector of booleans (one per input).
    ///
    /// # Panics
    ///
    /// Panics if `j >= self.len`.
    pub fn pattern(&self, j: u32) -> Vec<bool> {
        assert!(j < self.len, "pattern index out of range");
        self.words.iter().map(|w| (w >> j) & 1 == 1).collect()
    }
}

/// A source of bit-parallel pattern blocks.
///
/// Implementors are infinite streams; callers decide how many patterns to
/// draw.  The trait is object-safe so simulators can take
/// `&mut dyn PatternSource`.
pub trait PatternSource {
    /// Produces the next block of up to `limit` patterns (`limit` ≤ 64).
    fn next_block(&mut self, limit: u32) -> PatternBlock;

    /// Number of primary inputs each block covers.
    fn num_inputs(&self) -> usize;
}

/// Weighted (unequiprobable) random patterns: input *i* is 1 with
/// probability `probs[i]`, independently across inputs and patterns.
///
/// This models both software pattern generation (fault-simulation
/// acceleration, §5.2) and ideal weighted-LFSR hardware; the quantized
/// hardware realization lives in `wrt-bist`.
///
/// # Example
///
/// ```
/// use wrt_sim::{PatternSource, WeightedPatterns};
/// let mut src = WeightedPatterns::new(vec![0.9, 0.1], 7);
/// let block = src.next_block(64);
/// assert_eq!(block.words.len(), 2);
/// // Input 0 is mostly ones, input 1 mostly zeros.
/// assert!(block.words[0].count_ones() > block.words[1].count_ones());
/// ```
#[derive(Debug, Clone)]
pub struct WeightedPatterns {
    probs: Vec<f64>,
    rng: Xoshiro256,
}

impl WeightedPatterns {
    /// Creates a weighted source with one probability per primary input.
    pub fn new(probs: Vec<f64>, seed: u64) -> Self {
        WeightedPatterns {
            probs,
            rng: Xoshiro256::seed_from(seed),
        }
    }

    /// The conventional random test: every input 1 with probability 0.5.
    pub fn equiprobable(num_inputs: usize, seed: u64) -> Self {
        WeightedPatterns::new(vec![0.5; num_inputs], seed)
    }

    /// The input probabilities driving this source.
    pub fn probs(&self) -> &[f64] {
        &self.probs
    }
}

impl PatternSource for WeightedPatterns {
    fn next_block(&mut self, limit: u32) -> PatternBlock {
        let limit = limit.clamp(1, 64);
        let words = self
            .probs
            .iter()
            .map(|&p| self.rng.weighted_word(p))
            .collect();
        PatternBlock { words, len: limit }
    }

    fn num_inputs(&self) -> usize {
        self.probs.len()
    }
}

/// Exhaustive pattern source: counts through all `2^n` input combinations
/// (wraps around).  Useful for exact small-circuit experiments and tests.
#[derive(Debug, Clone)]
pub struct ExhaustivePatterns {
    num_inputs: usize,
    next: u64,
}

impl ExhaustivePatterns {
    /// Creates a counter-based source for `num_inputs` inputs.
    ///
    /// # Panics
    ///
    /// Panics if `num_inputs > 63` (exhaustive enumeration is pointless
    /// beyond that).
    pub fn new(num_inputs: usize) -> Self {
        assert!(num_inputs <= 63, "exhaustive source limited to 63 inputs");
        ExhaustivePatterns {
            num_inputs,
            next: 0,
        }
    }
}

impl PatternSource for ExhaustivePatterns {
    fn next_block(&mut self, limit: u32) -> PatternBlock {
        let limit = limit.clamp(1, 64);
        let mut words = vec![0u64; self.num_inputs];
        for j in 0..limit {
            let value = self.next;
            self.next = self.next.wrapping_add(1);
            for (i, w) in words.iter_mut().enumerate() {
                *w |= ((value >> i) & 1) << j;
            }
        }
        PatternBlock { words, len: limit }
    }

    fn num_inputs(&self) -> usize {
        self.num_inputs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_mask_matches_len() {
        let b = PatternBlock {
            words: vec![0],
            len: 10,
        };
        assert_eq!(b.mask(), 0x3FF);
        let full = PatternBlock {
            words: vec![0],
            len: 64,
        };
        assert_eq!(full.mask(), u64::MAX);
    }

    #[test]
    fn weighted_statistics() {
        let mut src = WeightedPatterns::new(vec![0.2, 0.8], 1);
        let mut ones = [0u32; 2];
        for _ in 0..200 {
            let b = src.next_block(64);
            ones[0] += b.words[0].count_ones();
            ones[1] += b.words[1].count_ones();
        }
        let total = 200.0 * 64.0;
        assert!((f64::from(ones[0]) / total - 0.2).abs() < 0.02);
        assert!((f64::from(ones[1]) / total - 0.8).abs() < 0.02);
    }

    #[test]
    fn weighted_is_deterministic_per_seed() {
        let mut a = WeightedPatterns::new(vec![0.3; 4], 9);
        let mut b = WeightedPatterns::new(vec![0.3; 4], 9);
        assert_eq!(a.next_block(64), b.next_block(64));
    }

    #[test]
    fn pattern_extraction() {
        let mut src = ExhaustivePatterns::new(3);
        let b = src.next_block(8);
        assert_eq!(b.pattern(0), vec![false, false, false]);
        assert_eq!(b.pattern(5), vec![true, false, true]);
        assert_eq!(b.pattern(7), vec![true, true, true]);
    }

    #[test]
    fn exhaustive_wraps_and_continues() {
        let mut src = ExhaustivePatterns::new(2);
        let b1 = src.next_block(3);
        let b2 = src.next_block(3);
        assert_eq!(b1.pattern(0), vec![false, false]);
        assert_eq!(b2.pattern(0), vec![true, true]); // continues at 3
    }

    #[test]
    fn source_is_object_safe() {
        let mut src: Box<dyn PatternSource> = Box::new(ExhaustivePatterns::new(2));
        assert_eq!(src.num_inputs(), 2);
        let _ = src.next_block(4);
    }
}

//! Shared proptest strategies for the crate's property tests.

use proptest::prelude::*;
use wrt_circuit::{Circuit, CircuitBuilder, GateKind};

/// A small random 4-input circuit with two outputs: a mix of gate kinds
/// over randomly picked (possibly reconvergent) fanins.
pub fn arb_circuit() -> impl Strategy<Value = Circuit> {
    let kinds = prop::sample::select(vec![
        GateKind::And,
        GateKind::Nand,
        GateKind::Or,
        GateKind::Nor,
        GateKind::Xor,
        GateKind::Xnor,
        GateKind::Not,
    ]);
    proptest::collection::vec((kinds, proptest::collection::vec(0usize..100, 1..3)), 4..18)
        .prop_map(|specs| {
            let mut b = CircuitBuilder::named("rand");
            let mut ids = Vec::new();
            for i in 0..4 {
                ids.push(b.input(format!("i{i}")));
            }
            for (kind, picks) in specs {
                let fanin: Vec<_> = if kind == GateKind::Not {
                    vec![ids[picks[0] % ids.len()]]
                } else {
                    picks.iter().map(|&p| ids[p % ids.len()]).collect()
                };
                ids.push(b.gate_auto(kind, &fanin).expect("valid"));
            }
            b.mark_output(*ids.last().expect("nonempty"));
            b.mark_output(ids[4]);
            b.build().expect("valid circuit")
        })
}

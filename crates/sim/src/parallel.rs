//! Sharded multi-threaded PPSFP fault simulation.
//!
//! PPSFP is embarrassingly parallel across faults: every fault's detection
//! words depend only on the fault-free block values and the fault's own
//! cone.  The engine here partitions the fault list into cone-locality-aware
//! shards ([`FaultPartition`]), gives each shard a worker thread owning its
//! own [`FaultSimulator`] scratch state and compacted [`FaultWorklist`],
//! and streams pattern blocks to all workers in bounded chunks.
//!
//! Design:
//!
//! * **One pattern stream, many fault shards.**  The main thread draws
//!   blocks from the (inherently sequential, seed-deterministic) pattern
//!   source and broadcasts reference-counted chunks over bounded channels;
//!   every worker simulates *all* patterns against *its* faults.  Results
//!   are merged by fault id, so the outcome is bit-identical to the serial
//!   engine's — same `detected_at`, same counts — for any thread count.
//! * **Duplicated good simulation.**  Each worker re-runs the fault-free
//!   simulation of a block for its own scratch state.  That multiplies the
//!   (cheap, `O(gates)`) good simulation by the shard count but keeps
//!   workers completely independent — no shared mutable state, no locks.
//! * **Compacted worklists + early exit.**  With fault dropping, a worker
//!   swap-removes detected faults and stops consuming chunks once its
//!   worklist drains; the producer stops generating as soon as every
//!   worker has hung up.
//!
//! `std::thread::scope` keeps everything dependency-free and lets workers
//! borrow the circuit and fault list directly.

use std::num::NonZeroUsize;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender};
use std::sync::Arc;

use wrt_circuit::Circuit;
use wrt_fault::{FaultId, FaultList, FaultPartition};
use wrt_robust::failpoint::{self, sites};
use wrt_robust::{Budget, BudgetExceeded, DegradeStep, InjectedFailure, Ladder};

use crate::coverage::CoverageResult;
use crate::event::{
    count_set_bits, detection_counts_opts, fault_coverage_opts, first_set_bit, superblock_split,
    with_block_words, EventSimulator, SimEngineKind, SimOptions, SimStats, SuperBlock,
};
use crate::fault_sim::{FaultSimulator, FaultWorklist};
use crate::patterns::{PatternBlock, PatternSource};

/// Pattern blocks per broadcast chunk (8 Ki patterns): large enough to
/// amortize channel traffic, small enough to bound in-flight memory and
/// to overlap pattern generation with simulation even on short runs.
const CHUNK_BLOCKS: usize = 128;

/// Chunks a worker may have queued; the producer blocks beyond that, so
/// at most a few chunks are alive at once regardless of pattern count.
const CHANNEL_DEPTH: usize = 2;

/// A run of consecutive pattern blocks starting at pattern `start`.
#[derive(Debug)]
pub(crate) struct Chunk {
    pub(crate) start: u64,
    pub(crate) blocks: Vec<PatternBlock>,
}

/// What the sharded engine had to do to bring a run to completion.
///
/// A clean run has zero everything.  When a shard worker dies — a real
/// panic or an injected one — the engine requeues that shard's fault
/// worklist for bounded serial replay (same engine first, then the dense
/// engine); only faults whose shard failed every retry end up in
/// [`ShardRecovery::unresolved`].
#[derive(Debug, Clone, Default)]
pub struct ShardRecovery {
    /// Worker threads that panicked (original fan-out plus replays).
    pub worker_panics: usize,
    /// Shard replay attempts performed.
    pub replays: usize,
    /// Degradation steps taken ([`DegradeStep::ShardRequeue`], plus
    /// [`DegradeStep::EventToDense`] when a replay fell back engines).
    pub ladder: Ladder,
    /// Faults whose shard exhausted its retries; their entries in the
    /// merged result are unchanged from the initial value (undetected /
    /// zero counts) and must not be interpreted as simulated.
    pub unresolved: Vec<FaultId>,
}

impl ShardRecovery {
    /// Whether every fault's result is accounted for (recovered runs
    /// included — only [`ShardRecovery::unresolved`] faults are lost).
    pub fn fully_recovered(&self) -> bool {
        self.unresolved.is_empty()
    }

    /// Whether the run needed no recovery at all.
    pub fn is_clean(&self) -> bool {
        self.worker_panics == 0 && self.replays == 0 && self.ladder.is_empty()
    }
}

/// Everything [`run_sharded`] reports alongside the merged `out` values.
pub(crate) struct ShardRunOutcome {
    pub(crate) stats: SimStats,
    pub(crate) recovery: ShardRecovery,
    /// Patterns actually streamed to the workers — `num_patterns` unless
    /// a budget axis tripped at a chunk boundary.
    pub(crate) streamed: u64,
    /// The budget axis that stopped streaming early, if any.
    pub(crate) tripped: Option<BudgetExceeded>,
}

/// Number of worker threads to use when the caller passes `threads = 0`:
/// the machine's available parallelism (1 if unknown).
pub fn available_threads() -> usize {
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// Minimum faults per shard when the caller lets us pick the thread
/// count: below this, fan-out overhead dominates any parallel win.
const MIN_FAULTS_PER_SHARD: usize = 16;

/// Resolves a requested thread count against a fault-list size:
/// `0` becomes the machine's available parallelism capped so each
/// auto-chosen shard gets at least a minimum number of faults; explicit
/// counts are honored as given.  Results of the sharded engines are
/// identical for every thread count — only the wall clock differs — so
/// callers embedding the sharded engine (e.g. Monte-Carlo estimators)
/// can use this to budget threads without changing outputs.
pub fn recommended_threads(requested: usize, num_faults: usize) -> usize {
    if requested == 0 {
        available_threads()
            .min(num_faults / MIN_FAULTS_PER_SHARD)
            .max(1)
    } else {
        requested
    }
}

/// Draws blocks from `source` and broadcasts them to `senders` in bounded
/// chunks until `num_patterns` patterns are out, every receiver hung up,
/// or the budget (when given, with its canonical evals-per-pattern rate)
/// trips at a chunk boundary.  Returns the patterns streamed and the
/// tripped axis, if any.
fn stream_chunks(
    mut source: impl PatternSource,
    num_patterns: u64,
    mut senders: Vec<SyncSender<Arc<Chunk>>>,
    budget: Option<(&Budget, u64)>,
) -> (u64, Option<BudgetExceeded>) {
    let mut done = 0u64;
    while done < num_patterns && !senders.is_empty() {
        if let Some((budget, evals_per_pattern)) = budget {
            // Check-ins happen at chunk boundaries only, so a trip always
            // leaves a well-formed prefix: every worker has seen exactly
            // the chunks streamed so far.
            if let Err(reason) = budget.check_in(done * evals_per_pattern, 0) {
                return (done, Some(reason));
            }
        }
        let start = done;
        let mut blocks = Vec::with_capacity(CHUNK_BLOCKS);
        while blocks.len() < CHUNK_BLOCKS && done < num_patterns {
            let limit = (num_patterns - done).min(64) as u32;
            let block = source.next_block(limit);
            done += u64::from(block.len);
            blocks.push(block);
        }
        let chunk = Arc::new(Chunk { start, blocks });
        // A send fails when the worker dropped its receiver (worklist
        // drained): stop feeding it, keep the others going.
        senders.retain(|tx| tx.send(Arc::clone(&chunk)).is_ok());
    }
    (done, None)
}

/// Re-runs one poisoned shard serially: a fresh worker thread fed the
/// full (deterministic) pattern stream again, over exactly the
/// `num_patterns` the healthy shards consumed.  Returns `None` if the
/// replay worker also panicked.
fn replay_shard<T: Send>(
    sublist: FaultList,
    source: impl PatternSource,
    num_patterns: u64,
    worker: &(impl Fn(FaultList, Receiver<Arc<Chunk>>) -> (Vec<T>, SimStats) + Sync),
) -> Option<(Vec<T>, SimStats)> {
    std::thread::scope(|scope| {
        let (tx, rx): (SyncSender<Arc<Chunk>>, Receiver<Arc<Chunk>>) =
            sync_channel(CHANNEL_DEPTH);
        let handle = scope.spawn(move || worker(sublist, rx));
        // No budget: the replay must reproduce the primary stream length
        // exactly, and recovery is never cut short by a check-in.
        stream_chunks(source, num_patterns, vec![tx], None);
        handle.join().ok()
    })
}

/// The shared fan-out scaffold's configuration: what to simulate, how
/// wide to fan out, and which budget (if any) bounds the pattern stream.
pub(crate) struct ShardedRun<'a, S> {
    pub(crate) circuit: &'a Circuit,
    pub(crate) faults: &'a FaultList,
    pub(crate) source: S,
    pub(crate) num_patterns: u64,
    pub(crate) threads: usize,
    pub(crate) budget: Option<&'a Budget>,
    /// Whether `fallback` is a genuinely different engine than `worker`
    /// (records [`DegradeStep::EventToDense`] on the second replay).
    pub(crate) fallback_is_distinct: bool,
}

/// The shared fan-out scaffold: partitions the fault list into
/// cone-locality-aware shards, spawns one scoped worker per shard with
/// its own bounded chunk channel, streams the pattern blocks, and merges
/// each worker's per-shard vector back into `out` by fault id.
///
/// `worker` receives the shard's fault sublist and its chunk receiver and
/// returns one result per shard fault (in sublist order) plus the shard's
/// work counters.
///
/// # Panic isolation
///
/// A worker panic (or an injected spawn/merge failure from an armed
/// fail-point session) no longer aborts the run: the poisoned shard is
/// requeued for serial replay against a fresh clone of the pattern
/// source — first on the same engine, then once more on the `fallback`
/// (dense) engine — which reproduces the lost results bit-identically,
/// because every worker consumes the same deterministic stream.  Shards
/// that fail every retry surface their faults in
/// [`ShardRecovery::unresolved`] instead of panicking.
pub(crate) fn run_sharded<T: Send, S: PatternSource + Clone>(
    run: ShardedRun<'_, S>,
    out: &mut [T],
    worker: impl Fn(FaultList, Receiver<Arc<Chunk>>) -> (Vec<T>, SimStats) + Sync,
    fallback: impl Fn(FaultList, Receiver<Arc<Chunk>>) -> (Vec<T>, SimStats) + Sync,
) -> ShardRunOutcome {
    let ShardedRun {
        circuit,
        faults,
        source,
        num_patterns,
        threads,
        budget,
        fallback_is_distinct,
    } = run;
    let partition = FaultPartition::cone_locality(circuit, faults, threads);
    // Canonical eval unit: one fault-free node evaluation per pattern,
    // making the eval budget a machine- and thread-count-independent
    // measure of the pattern stream.
    let evals_per_pattern = (circuit.num_nodes() as u64).max(1);
    let mut stats = SimStats::default();
    let mut recovery = ShardRecovery::default();
    let replay_source = source.clone();
    let mut poisoned: Vec<usize> = Vec::new();
    let (streamed, tripped) = std::thread::scope(|scope| {
        let worker = &worker;
        let mut senders = Vec::with_capacity(partition.num_shards());
        let mut handles = Vec::with_capacity(partition.num_shards());
        for s in 0..partition.num_shards() {
            let (tx, rx): (SyncSender<Arc<Chunk>>, Receiver<Arc<Chunk>>) =
                sync_channel(CHANNEL_DEPTH);
            senders.push(tx);
            let sublist = partition.sublist(faults, s);
            handles.push(
                scope.spawn(move || -> Result<(Vec<T>, SimStats), InjectedFailure> {
                    failpoint::hit(sites::WORKER_SPAWN)?;
                    Ok(worker(sublist, rx))
                }),
            );
        }
        let streamed = stream_chunks(
            source,
            num_patterns,
            senders,
            budget.map(|b| (b, evals_per_pattern)),
        );
        for (s, handle) in handles.into_iter().enumerate() {
            match handle.join() {
                // A real worker panic: isolate and requeue the shard.
                Err(_panic) => {
                    recovery.worker_panics += 1;
                    poisoned.push(s);
                }
                // An injected spawn failure: same recovery, no unwind.
                Ok(Err(_injected)) => poisoned.push(s),
                Ok(Ok((local, local_stats))) => {
                    // The merge fail point may be armed to panic; catch it
                    // so an injected merge failure degrades to a shard
                    // replay instead of aborting the run (safe code only —
                    // the workspace forbids unsafe, and the registry lock
                    // tolerates poisoning).
                    match catch_unwind(AssertUnwindSafe(|| failpoint::hit(sites::SHARD_MERGE))) {
                        Ok(Ok(())) => {
                            stats.merge(&local_stats);
                            for (value, &id) in local.into_iter().zip(partition.shard(s)) {
                                out[id.index()] = value;
                            }
                        }
                        Err(_panic) => {
                            recovery.worker_panics += 1;
                            poisoned.push(s);
                        }
                        Ok(Err(_injected)) => poisoned.push(s),
                    }
                }
            }
        }
        streamed
    });
    for s in poisoned {
        recovery
            .ladder
            .record(DegradeStep::ShardRequeue, format!("shard {s} poisoned"));
        let mut recovered = false;
        for attempt in 0..2 {
            recovery.replays += 1;
            if attempt == 1 && fallback_is_distinct {
                recovery.ladder.record(
                    DegradeStep::EventToDense,
                    format!("shard {s} second replay"),
                );
            }
            let sublist = partition.sublist(faults, s);
            let replayed = if attempt == 0 {
                replay_shard(sublist, replay_source.clone(), streamed, &worker)
            } else {
                replay_shard(sublist, replay_source.clone(), streamed, &fallback)
            };
            if let Some((local, local_stats)) = replayed {
                stats.merge(&local_stats);
                for (value, &id) in local.into_iter().zip(partition.shard(s)) {
                    out[id.index()] = value;
                }
                recovered = true;
                break;
            }
            recovery.worker_panics += 1;
        }
        if !recovered {
            recovery.unresolved.extend(partition.shard(s).iter().copied());
        }
    }
    ShardRunOutcome {
        stats,
        recovery,
        streamed,
        tripped,
    }
}

/// Sharded [`fault_coverage`]: identical results, fanned out over
/// `threads` worker threads (`0` = capped available parallelism, see
/// [`recommended_threads`]).
///
/// The fault list is split into cone-locality-aware shards, one worker
/// per shard; see the module docs for the design.  `threads = 1` falls
/// back to the serial engine.  Results are bit-identical to
/// [`fault_coverage`] for every thread count, because every worker
/// consumes the same deterministic pattern stream.
pub fn fault_coverage_sharded(
    circuit: &Circuit,
    faults: &FaultList,
    source: impl PatternSource + Clone,
    num_patterns: u64,
    drop: bool,
    threads: usize,
) -> CoverageResult {
    fault_coverage_sharded_opts(
        circuit,
        faults,
        source,
        num_patterns,
        drop,
        threads,
        SimOptions::dense(),
    )
    .0
}

/// [`fault_coverage_sharded`] with a configurable inner loop
/// ([`SimOptions`]): each shard worker runs the selected engine (dense
/// cone walk or event-driven superblocks).  Results are bit-identical
/// across engines, widths, and thread counts; the merged work counters
/// are returned alongside.
///
/// # Panics
///
/// Panics if `opts` fails [`SimOptions::validate`], or if a shard worker
/// panicked repeatedly and its faults could not be recovered by bounded
/// serial replay (see [`ShardRecovery`]; the budgeted
/// [`crate::robust::fault_coverage_robust`] entry point reports the same
/// situation structurally instead).
pub fn fault_coverage_sharded_opts(
    circuit: &Circuit,
    faults: &FaultList,
    source: impl PatternSource + Clone,
    num_patterns: u64,
    drop: bool,
    threads: usize,
    opts: SimOptions,
) -> (CoverageResult, SimStats) {
    let threads = recommended_threads(threads, faults.len());
    if threads <= 1 || faults.len() <= 1 {
        return fault_coverage_opts(circuit, faults, source, num_patterns, drop, opts);
    }
    opts.validate().expect("invalid SimOptions");
    let mut detected_at: Vec<Option<u64>> = vec![None; faults.len()];
    let outcome = run_sharded(
        ShardedRun {
            circuit,
            faults,
            source,
            num_patterns,
            threads,
            budget: None,
            fallback_is_distinct: opts.engine == SimEngineKind::Event,
        },
        &mut detected_at,
        |sublist, rx| match opts.engine {
            SimEngineKind::Dense => coverage_worker_dense(circuit, sublist, rx, drop),
            SimEngineKind::Event => with_block_words!(opts.block_words, W => {
                coverage_worker_event::<W>(circuit, sublist, rx, drop)
            }),
        },
        |sublist, rx| coverage_worker_dense(circuit, sublist, rx, drop),
    );
    assert!(
        outcome.recovery.fully_recovered(),
        "fault-sim shard recovery failed: {} faults unresolved after bounded replays \
         ({} worker panics)",
        outcome.recovery.unresolved.len(),
        outcome.recovery.worker_panics,
    );
    (CoverageResult::new(detected_at, num_patterns), outcome.stats)
}

pub(crate) fn coverage_worker_dense(
    circuit: &Circuit,
    sublist: FaultList,
    rx: Receiver<Arc<Chunk>>,
    drop: bool,
) -> (Vec<Option<u64>>, SimStats) {
    let mut sim = FaultSimulator::new(circuit, &sublist);
    let mut worklist = FaultWorklist::full(sublist.len());
    let mut local: Vec<Option<u64>> = vec![None; sublist.len()];
    'chunks: while let Ok(chunk) = rx.recv() {
        let mut done = chunk.start;
        for block in &chunk.blocks {
            if drop && worklist.is_empty() {
                // Hang up: the producer stops feeding this shard.
                break 'chunks;
            }
            sim.detect_block_worklist(&block.words, block.mask(), &mut worklist, drop, |i, w| {
                if local[i].is_none() {
                    local[i] = Some(done + u64::from(w.trailing_zeros()));
                }
            });
            done += u64::from(block.len);
        }
    }
    let stats = sim.stats();
    (local, stats)
}

/// Groups `blocks` into `W`-wide superblocks (refilling `sb` in place)
/// and invokes `f` on each; `f` returning `false` stops early.
///
/// The one copy of the bit-identity-critical grouping rule shared by the
/// event workers: boundaries come from [`superblock_split`] — extend only
/// across full blocks — and `CHUNK_BLOCKS` is a multiple of every
/// supported width, so worker grouping coincides with the serial
/// engine's [`SuperBlock::refill_draw`] stream grouping.
fn for_each_superblock<const W: usize>(
    blocks: &[PatternBlock],
    sb: &mut SuperBlock<W>,
    mut f: impl FnMut(&SuperBlock<W>) -> bool,
) {
    let mut idx = 0;
    while idx < blocks.len() {
        let take = superblock_split(&blocks[idx..], W);
        sb.refill_from_blocks(&blocks[idx..idx + take]);
        if !f(sb) {
            return;
        }
        idx += take;
    }
}

/// Event-engine coverage worker: one [`EventSimulator`] per shard over
/// the broadcast chunks' superblocks.
pub(crate) fn coverage_worker_event<const W: usize>(
    circuit: &Circuit,
    sublist: FaultList,
    rx: Receiver<Arc<Chunk>>,
    drop: bool,
) -> (Vec<Option<u64>>, SimStats) {
    let mut sim = EventSimulator::<W>::new(circuit, &sublist);
    let mut worklist = FaultWorklist::full(sublist.len());
    let mut local: Vec<Option<u64>> = vec![None; sublist.len()];
    let mut sb = SuperBlock::<W>::empty(circuit.num_inputs());
    while let Ok(chunk) = rx.recv() {
        let mut done = chunk.start;
        let mut drained = false;
        for_each_superblock(&chunk.blocks, &mut sb, |sb| {
            if drop && worklist.is_empty() {
                drained = true;
                return false;
            }
            sim.detect_superblock_worklist(&sb.words, sb.mask(), &mut worklist, drop, |i, w| {
                if local[i].is_none() {
                    let bit = first_set_bit(&w).expect("on_detect implies a set bit");
                    local[i] = Some(done + u64::from(bit));
                }
            });
            done += u64::from(sb.len);
            true
        });
        if drained {
            // Hang up: the producer stops feeding this shard.
            break;
        }
    }
    let stats = sim.stats();
    (local, stats)
}

/// Sharded [`detection_counts`]: identical counts, fanned out over
/// `threads` worker threads (`0` = capped available parallelism, see
/// [`recommended_threads`]).
///
/// This is the Monte-Carlo hot path of the paper's loop: the per-fault
/// detection frequencies it returns feed the `p_f(X)` estimates of the
/// probability-refinement sweeps.
pub fn detection_counts_sharded(
    circuit: &Circuit,
    faults: &FaultList,
    source: impl PatternSource + Clone,
    num_patterns: u64,
    threads: usize,
) -> Vec<u64> {
    detection_counts_sharded_opts(
        circuit,
        faults,
        source,
        num_patterns,
        threads,
        SimOptions::dense(),
    )
    .0
}

/// [`detection_counts_sharded`] with a configurable inner loop
/// ([`SimOptions`]); identical counts for every engine/width/thread
/// combination, merged work counters alongside.
///
/// # Panics
///
/// Panics if `opts` fails [`SimOptions::validate`], or if shard recovery
/// was exhausted (see [`fault_coverage_sharded_opts`]).
pub fn detection_counts_sharded_opts(
    circuit: &Circuit,
    faults: &FaultList,
    source: impl PatternSource + Clone,
    num_patterns: u64,
    threads: usize,
    opts: SimOptions,
) -> (Vec<u64>, SimStats) {
    let threads = recommended_threads(threads, faults.len());
    if threads <= 1 || faults.len() <= 1 {
        return detection_counts_opts(circuit, faults, source, num_patterns, opts);
    }
    opts.validate().expect("invalid SimOptions");
    let mut counts = vec![0u64; faults.len()];
    let outcome = run_sharded(
        ShardedRun {
            circuit,
            faults,
            source,
            num_patterns,
            threads,
            budget: None,
            fallback_is_distinct: opts.engine == SimEngineKind::Event,
        },
        &mut counts,
        |sublist, rx| match opts.engine {
            SimEngineKind::Dense => counts_worker_dense(circuit, sublist, rx),
            SimEngineKind::Event => with_block_words!(opts.block_words, W => {
                counts_worker_event::<W>(circuit, sublist, rx)
            }),
        },
        |sublist, rx| counts_worker_dense(circuit, sublist, rx),
    );
    assert!(
        outcome.recovery.fully_recovered(),
        "fault-sim shard recovery failed: {} faults unresolved after bounded replays \
         ({} worker panics)",
        outcome.recovery.unresolved.len(),
        outcome.recovery.worker_panics,
    );
    (counts, outcome.stats)
}

pub(crate) fn counts_worker_dense(
    circuit: &Circuit,
    sublist: FaultList,
    rx: Receiver<Arc<Chunk>>,
) -> (Vec<u64>, SimStats) {
    let mut sim = FaultSimulator::new(circuit, &sublist);
    let mut worklist = FaultWorklist::full(sublist.len());
    let mut local = vec![0u64; sublist.len()];
    while let Ok(chunk) = rx.recv() {
        for block in &chunk.blocks {
            sim.detect_block_worklist(&block.words, block.mask(), &mut worklist, false, |i, w| {
                local[i] += u64::from(w.count_ones())
            });
        }
    }
    let stats = sim.stats();
    (local, stats)
}

pub(crate) fn counts_worker_event<const W: usize>(
    circuit: &Circuit,
    sublist: FaultList,
    rx: Receiver<Arc<Chunk>>,
) -> (Vec<u64>, SimStats) {
    let mut sim = EventSimulator::<W>::new(circuit, &sublist);
    let mut worklist = FaultWorklist::full(sublist.len());
    let mut local = vec![0u64; sublist.len()];
    let mut sb = SuperBlock::<W>::empty(circuit.num_inputs());
    while let Ok(chunk) = rx.recv() {
        for_each_superblock(&chunk.blocks, &mut sb, |sb| {
            sim.detect_superblock_worklist(&sb.words, sb.mask(), &mut worklist, false, |i, w| {
                local[i] += u64::from(count_set_bits(&w))
            });
            true
        });
    }
    let stats = sim.stats();
    (local, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault_sim::{detection_counts, fault_coverage};
    use crate::patterns::WeightedPatterns;
    use wrt_circuit::parse_bench;

    fn adder() -> Circuit {
        parse_bench(
            "INPUT(a)\nINPUT(b)\nINPUT(cin)\nOUTPUT(s)\nOUTPUT(cout)\n\
             x1 = XOR(a, b)\ns = XOR(x1, cin)\na1 = AND(a, b)\na2 = AND(x1, cin)\n\
             cout = OR(a1, a2)\n",
        )
        .unwrap()
    }

    #[test]
    fn sharded_coverage_matches_serial_bit_for_bit() {
        let c = adder();
        let faults = wrt_fault::FaultList::full(&c);
        for drop in [false, true] {
            let serial = fault_coverage(
                &c,
                &faults,
                WeightedPatterns::equiprobable(3, 11),
                500,
                drop,
            );
            for threads in [2, 3, 4, 16] {
                let sharded = fault_coverage_sharded(
                    &c,
                    &faults,
                    WeightedPatterns::equiprobable(3, 11),
                    500,
                    drop,
                    threads,
                );
                assert_eq!(
                    serial.detected_at(),
                    sharded.detected_at(),
                    "drop = {drop}, threads = {threads}"
                );
            }
        }
    }

    #[test]
    fn sharded_counts_match_serial() {
        let c = adder();
        let faults = wrt_fault::FaultList::full(&c);
        let serial =
            detection_counts(&c, &faults, WeightedPatterns::equiprobable(3, 23), 1000);
        for threads in [0, 1, 2, 5, 64] {
            let sharded = detection_counts_sharded(
                &c,
                &faults,
                WeightedPatterns::equiprobable(3, 23),
                1000,
                threads,
            );
            assert_eq!(serial, sharded, "threads = {threads}");
        }
    }

    #[test]
    fn single_fault_and_empty_lists_are_fine() {
        let c = adder();
        let one = wrt_fault::FaultList::from_faults(vec![wrt_fault::Fault::output(
            c.node_id("s").unwrap(),
            false,
        )]);
        let r = fault_coverage_sharded(
            &c,
            &one,
            WeightedPatterns::equiprobable(3, 1),
            128,
            true,
            4,
        );
        assert_eq!(r.num_faults(), 1);
        let empty = wrt_fault::FaultList::from_faults(vec![]);
        let r = fault_coverage_sharded(
            &c,
            &empty,
            WeightedPatterns::equiprobable(3, 1),
            128,
            true,
            4,
        );
        assert_eq!(r.num_faults(), 0);
        assert_eq!(r.coverage(), 1.0);
    }

    #[test]
    fn zero_threads_resolves_to_capped_parallelism() {
        assert!(available_threads() >= 1);
        // Auto mode never overshards tiny fault lists...
        assert_eq!(recommended_threads(0, 3), 1);
        let big = 100_000 * MIN_FAULTS_PER_SHARD;
        assert_eq!(recommended_threads(0, big), available_threads());
        // ...but explicit requests are honored as given.
        assert_eq!(recommended_threads(3, 3), 3);
    }

    #[test]
    fn more_patterns_than_one_chunk() {
        // > CHUNK_BLOCKS * 64 patterns forces several broadcast chunks.
        let c = parse_bench("INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = AND(a, b)\n").unwrap();
        let faults = wrt_fault::FaultList::full(&c);
        let n = (CHUNK_BLOCKS as u64) * 64 + 321;
        let serial = detection_counts(&c, &faults, WeightedPatterns::equiprobable(2, 7), n);
        let sharded = detection_counts_sharded(
            &c,
            &faults,
            WeightedPatterns::equiprobable(2, 7),
            n,
            3,
        );
        assert_eq!(serial, sharded);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::fault_sim::{detection_counts, fault_coverage};
    use crate::patterns::WeightedPatterns;
    use crate::test_support::arb_circuit;
    use proptest::prelude::*;
    use wrt_fault::FaultList;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// The sharded engine is bit-identical to the serial one —
        /// `detected_at` and `counts` — across random circuits, weights,
        /// thread/shard counts (including shards > faults and 1 thread),
        /// pattern counts, and with/without fault dropping.
        #[test]
        fn sharded_is_bit_identical_to_serial(
            circuit in arb_circuit(),
            weights in proptest::collection::vec(0.05f64..0.95, 4),
            threads in 1usize..9,
            seed in 0u64..1_000,
            patterns in 1u64..400,
            drop in any::<bool>(),
        ) {
            let faults = FaultList::full(&circuit);

            let serial = fault_coverage(
                &circuit, &faults,
                WeightedPatterns::new(weights.clone(), seed),
                patterns, drop,
            );
            let sharded = fault_coverage_sharded(
                &circuit, &faults,
                WeightedPatterns::new(weights.clone(), seed),
                patterns, drop, threads,
            );
            prop_assert_eq!(serial.detected_at(), sharded.detected_at());

            let counts = detection_counts(
                &circuit, &faults,
                WeightedPatterns::new(weights.clone(), seed),
                patterns,
            );
            let counts_sharded = detection_counts_sharded(
                &circuit, &faults,
                WeightedPatterns::new(weights, seed),
                patterns, threads,
            );
            prop_assert_eq!(counts, counts_sharded);
        }

        /// Shard counts far beyond the fault count degenerate gracefully
        /// (singleton shards), still bit-identical.
        #[test]
        fn oversharding_is_identical(
            circuit in arb_circuit(),
            seed in 0u64..100,
        ) {
            let faults = FaultList::primary_inputs(&circuit);
            let serial = fault_coverage(
                &circuit, &faults,
                WeightedPatterns::equiprobable(4, seed),
                200, true,
            );
            let sharded = fault_coverage_sharded(
                &circuit, &faults,
                WeightedPatterns::equiprobable(4, seed),
                200, true, faults.len() * 3 + 7,
            );
            prop_assert_eq!(serial.detected_at(), sharded.detected_at());
        }
    }
}

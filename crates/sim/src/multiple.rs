//! Multiple stuck-at fault simulation.
//!
//! The paper's introduction argues that random tests over-deliver on
//! faults *outside* the single-stuck-at model: "the detection rate of
//! logical faults not in the fault model, multiple faults for instance,
//! will be higher".  This module simulates arbitrary *sets* of stuck-at
//! faults injected simultaneously, so that claim can be measured
//! (`crates/bench --bin multiple`).

use wrt_circuit::{Circuit, GateKind};
use wrt_fault::{Fault, FaultSite};

use crate::logic::eval_gate_words;
use crate::patterns::PatternSource;
use crate::rng::Xoshiro256;

/// Bit-parallel simulation of a circuit with a *set* of stuck-at faults
/// injected simultaneously; returns the word of patterns that detect the
/// multiple fault (some primary output differs from fault-free).
///
/// Unlike single-fault PPSFP there is no cone locality (the union of
/// cones can be the whole circuit), so this runs a full faulty pass.
///
/// # Panics
///
/// Panics if `pi_words.len() != circuit.num_inputs()`.
pub fn detect_multiple(circuit: &Circuit, faults: &[Fault], pi_words: &[u64], mask: u64) -> u64 {
    assert_eq!(pi_words.len(), circuit.num_inputs());
    let n = circuit.num_nodes();
    let mut good = vec![0u64; n];
    let mut bad = vec![0u64; n];
    for (id, node) in circuit.iter() {
        let g = match node.kind() {
            GateKind::Input => pi_words[circuit.input_position(id).expect("pi")],
            kind => eval_gate_words(kind, node.fanin().iter().map(|f| good[f.index()])),
        };
        good[id.index()] = g;
        let mut b = match node.kind() {
            GateKind::Input => pi_words[circuit.input_position(id).expect("pi")],
            kind => {
                let words = node.fanin().iter().enumerate().map(|(pin, f)| {
                    let mut w = bad[f.index()];
                    for fault in faults {
                        if fault.site == (FaultSite::InputPin { gate: id, pin }) {
                            w = stuck_word(fault.stuck_value);
                        }
                    }
                    w
                });
                eval_gate_words(kind, words)
            }
        };
        for fault in faults {
            if fault.site == FaultSite::Output(id) {
                b = stuck_word(fault.stuck_value);
            }
        }
        bad[id.index()] = b;
    }
    circuit
        .outputs()
        .iter()
        .fold(0u64, |acc, &o| acc | (good[o.index()] ^ bad[o.index()]))
        & mask
}

fn stuck_word(value: bool) -> u64 {
    if value {
        u64::MAX
    } else {
        0
    }
}

/// Draws `count` random multiple faults of the given multiplicity from a
/// base fault slice (without replacement within each multiple).
pub fn random_multiples(
    base: &[Fault],
    multiplicity: usize,
    count: usize,
    seed: u64,
) -> Vec<Vec<Fault>> {
    assert!(multiplicity >= 1 && multiplicity <= base.len());
    let mut rng = Xoshiro256::seed_from(seed);
    (0..count)
        .map(|_| {
            let mut picked = Vec::with_capacity(multiplicity);
            while picked.len() < multiplicity {
                let k = (rng.next_u64() % base.len() as u64) as usize;
                if !picked.contains(&base[k]) {
                    picked.push(base[k]);
                }
            }
            picked
        })
        .collect()
}

/// Fraction of `multiples` detected within `num_patterns` patterns from
/// `source`.
pub fn multiple_fault_coverage(
    circuit: &Circuit,
    multiples: &[Vec<Fault>],
    mut source: impl PatternSource,
    num_patterns: u64,
) -> f64 {
    if multiples.is_empty() {
        return 1.0;
    }
    let mut caught = vec![false; multiples.len()];
    let mut done = 0u64;
    while done < num_patterns && caught.iter().any(|&c| !c) {
        let limit = (num_patterns - done).min(64) as u32;
        let block = source.next_block(limit);
        let mask = block.mask();
        for (k, multiple) in multiples.iter().enumerate() {
            if !caught[k] && detect_multiple(circuit, multiple, &block.words, mask) != 0 {
                caught[k] = true;
            }
        }
        done += u64::from(block.len);
    }
    caught.iter().filter(|&&c| c).count() as f64 / multiples.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::patterns::ExhaustivePatterns;
    use wrt_circuit::parse_bench;
    use wrt_fault::FaultList;

    fn full_adder() -> Circuit {
        parse_bench(
            "INPUT(a)\nINPUT(b)\nINPUT(cin)\nOUTPUT(s)\nOUTPUT(cout)\n\
             x1 = XOR(a, b)\ns = XOR(x1, cin)\na1 = AND(a, b)\na2 = AND(x1, cin)\n\
             cout = OR(a1, a2)\n",
        )
        .unwrap()
    }

    #[test]
    fn single_fault_multiple_matches_ppsfp() {
        let c = full_adder();
        let faults = FaultList::full(&c);
        let mut sim = crate::FaultSimulator::new(&c, &faults);
        let mut src = ExhaustivePatterns::new(3);
        let block = src.next_block(8);
        let ppsfp = sim.detect_block(&block.words, block.mask());
        for (i, (_, fault)) in faults.iter().enumerate() {
            let multi = detect_multiple(&c, &[fault], &block.words, block.mask());
            assert_eq!(multi, ppsfp[i], "{}", fault.describe(&c));
        }
    }

    #[test]
    fn masking_pair_detected_by_neither_condition_alone() {
        // Two faults can mask each other on some patterns: the double of
        // (y s-a-0, y s-a-1) on the same line is just y s-a-1 (the later
        // injection wins in our ordering), but a pair on *different*
        // lines interacts genuinely.
        let c = parse_bench("INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = XOR(a, b)\n").unwrap();
        let a = c.node_id("a").unwrap();
        let b = c.node_id("b").unwrap();
        // Both inputs stuck at 1: y = 0 always; detected whenever true
        // XOR(a,b) = 1, i.e. on half the patterns — even though each
        // single fault is detected on half the patterns too, the double
        // is *masked* exactly when both faults are excited (a=b=0).
        let double = vec![
            wrt_fault::Fault::output(a, true),
            wrt_fault::Fault::output(b, true),
        ];
        // patterns j0=(0,0) j1=(1,0) j2=(0,1) j3=(1,1)
        let det = detect_multiple(&c, &double, &[0b1010, 0b1100], 0b1111);
        assert_eq!(det, 0b0110, "detected exactly where true XOR = 1");
    }

    #[test]
    fn random_multiples_have_requested_shape() {
        let c = full_adder();
        let faults = FaultList::full(&c);
        let base: Vec<_> = faults.iter().map(|(_, f)| f).collect();
        let multiples = random_multiples(&base, 3, 10, 42);
        assert_eq!(multiples.len(), 10);
        for m in &multiples {
            assert_eq!(m.len(), 3);
            let mut dedup = m.clone();
            dedup.dedup();
            assert_eq!(dedup.len(), 3, "no repeats inside a multiple");
        }
        // Deterministic per seed.
        assert_eq!(multiples, random_multiples(&base, 3, 10, 42));
    }

    #[test]
    fn multiple_coverage_on_the_full_adder_is_high() {
        let c = full_adder();
        let faults = FaultList::full(&c);
        let base: Vec<_> = faults.iter().map(|(_, f)| f).collect();
        let multiples = random_multiples(&base, 2, 40, 7);
        let coverage =
            multiple_fault_coverage(&c, &multiples, ExhaustivePatterns::new(3), 8);
        // Doubles are overwhelmingly detectable on an irredundant adder.
        assert!(coverage > 0.9, "coverage {coverage}");
    }
}

//! 2D fault×pattern tiled PPSFP: fault-shard × pattern-stripe tiles over
//! a work-stealing queue, with shared dense multi-fault batch passes.
//!
//! The 1D sharded engine (`parallel.rs`) decomposes along faults only:
//! every worker streams the *full* pattern set against its shard.  The
//! engine here tiles both axes.  The pattern stream is materialized once
//! (sequentially, seed-deterministically) and cut into *stripes* of
//! consecutive blocks; the fault list is cut into cone-locality *shards*;
//! each (shard, stripe) pair is one independent **tile**.  Workers pull
//! tiles from per-shard cursors, preferring their home shard and
//! *stealing* from other shards once home work drains — so a worker stuck
//! on a heavy shard no longer serializes the run.
//!
//! # Determinism
//!
//! Tiles share nothing: fault dropping acts only *within* a stripe, and
//! the global result is a commutative merge of per-tile values — the
//! minimum of per-stripe first-detection pattern indices for coverage,
//! the sum for detection counts.  A fault's first detection does not
//! depend on dropping, so the min over stripes equals the serial
//! first-detection index *exactly*, for every thread count, stripe size,
//! shard count, and steal order (property-tested below).  The price is
//! bounded redundancy: a fault detected in stripe 0 is still probed once
//! per later stripe, where it typically dies in one or two frontier
//! evaluations.
//!
//! # Shared dense multi-fault batching
//!
//! c6288ish-style faults defeat the event engine: their effects reach
//! most of the cone, so event scheduling pays the full cone walk *plus*
//! queue traffic, per fault.  In `Auto` mode, stripe 0 (the first
//! superblock) runs serially as a *probe*: a normal event detection pass
//! with per-fault eval profiling ([`crate::FaultEvalProfile`]) enabled,
//! so classification costs no redundant simulation — and under fault
//! dropping, faults the probe detects retire from every later stripe
//! (stripe 0 holds the earliest patterns, so their minimum is final).
//! Faults whose measured cost rivals their cone size are peeled off into
//! **batches** of up to [`BATCH_LANES`] faults rooted near each other.
//! One pass walks the batch's *union cone* once per 64-pattern block with
//! `[u64; BATCH_LANES]` lanes — lane `k` carries fault `k`'s faulty
//! values, diverging from the broadcast fault-free value only downstream
//! of fault `k`'s root (per-fault XOR-difference masks fall out of the
//! final lane-vs-good comparison).  The cone walk is amortized over the
//! whole batch: 16 high-reach faults cost one union-cone walk instead of
//! 16 nearly identical ones.
//!
//! The probe runs serially before fan-out, so the batch/event split is
//! deterministic and thread-independent; batches are formed within a
//! shard (shard fault order is root-sorted, keeping union cones tight).
//!
//! # Robustness
//!
//! Each tile runs under `catch_unwind` with a planted fail point
//! (`tile::run`); a poisoned tile is requeued for serial replay — same
//! engine first, then the dense engine — mirroring the 1D shard-replay
//! ladder, and stolen tiles are covered exactly like home tiles.  Budgets
//! check in at tile boundaries: the eval axis resolves upfront to the
//! same deterministic pattern clip as `robust.rs`; deadline/cancel trips
//! keep the maximal prefix of fully-completed stripes, so interrupted
//! partials are well-formed pattern prefixes.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Mutex, PoisonError};

use wrt_circuit::{transitive_fanout, Circuit, GateKind, NodeId};
use wrt_fault::{Fault, FaultList, FaultPartition};
use wrt_robust::failpoint::{self, sites};
use wrt_robust::{Budget, BudgetExceeded, DegradeStep, InjectedFailure, RunOutcome};

use crate::coverage::CoverageResult;
use crate::event::{
    count_set_bits, first_set_bit, inject_root_lanes, superblock_split, with_block_words,
    EventSimulator, SimStats, SuperBlock, SUPPORTED_BLOCK_WORDS,
};
use crate::fault_sim::{FaultSimulator, FaultWorklist};
use crate::logic::{eval_gate_lanes, WideLogicSim};
use crate::parallel::{recommended_threads, ShardRecovery};
use crate::patterns::{PatternBlock, PatternSource};
use crate::robust::{eval_clip, wrap_outcome};

/// Faults per dense multi-fault batch pass (`[u64; BATCH_LANES]` lanes).
/// Fixed independently of the event engine's superblock width `W`: batch
/// lanes span *faults*, superblock lanes span *patterns*.
pub const BATCH_LANES: usize = 16;

/// Probe threshold: a fault is a batch *candidate* when its profiled
/// event cost is at least this many evals per 64-pattern block.
const PROBE_MIN_EVALS_PER_BLOCK: f64 = 2.0;

/// A candidate group is committed as a batch only when its union-cone
/// walk undercuts the profiled event cost by this factor.
const BATCH_COMMIT_ALPHA: f64 = 0.9;

/// Auto width cap: per-node lane scratch (`num_nodes * W * 8` bytes)
/// should stay cache-friendly.
const LANE_SCRATCH_BUDGET_BYTES: usize = 8 << 20;

/// Auto stripe count cap: more stripes buy steal granularity but repeat
/// per-stripe fault probing.
const AUTO_MAX_STRIPES: usize = 4;

/// How the engine decides which faults go to dense batch passes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BatchMode {
    /// Probe the first superblock and batch faults whose measured event
    /// cost rivals their union cone (the default).
    #[default]
    Auto,
    /// Everything stays on the event axis (pure 2D tiling).
    Off,
    /// Batch every fault, skipping the cost test — for tests that must
    /// exercise the batch walk on circuits too small to qualify.
    Force,
}

/// Configuration of the 2D tiled engine.  Every `0` means "resolve
/// automatically"; see [`TileOptions::default`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TileOptions {
    /// Event-axis superblock width (one of [`SUPPORTED_BLOCK_WORDS`]),
    /// or 0 to pick the widest width that fits the pattern count and the
    /// lane-scratch cache budget.
    pub block_words: usize,
    /// Pattern stripes, or 0 for auto.  Requests beyond the block count
    /// are clamped (each stripe holds at least one superblock's blocks).
    pub pattern_stripes: usize,
    /// Fault shards, or 0 to match the thread count.
    pub fault_shards: usize,
    /// Worker threads, or 0 for [`recommended_threads`].
    pub threads: usize,
    /// Batch classification mode.
    pub batch: BatchMode,
}

impl Default for TileOptions {
    fn default() -> Self {
        TileOptions {
            block_words: 0,
            pattern_stripes: 0,
            fault_shards: 0,
            threads: 0,
            batch: BatchMode::Auto,
        }
    }
}

impl TileOptions {
    /// Checks the option combination.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message when `block_words` is neither 0
    /// (auto) nor a supported superblock width.
    pub fn validate(&self) -> Result<(), String> {
        if self.block_words != 0 && !SUPPORTED_BLOCK_WORDS.contains(&self.block_words) {
            return Err(format!(
                "block_words must be 0 (auto) or one of {SUPPORTED_BLOCK_WORDS:?}, got {}",
                self.block_words
            ));
        }
        Ok(())
    }
}

/// Work counters and shape of one 2D tiled run.
///
/// Everything except `steals` is deterministic for fixed inputs and
/// options: the per-axis eval split depends on the (serial) probe and the
/// shard/stripe layout, not on scheduling.  `steals` — tiles executed by
/// a non-home worker — depends on thread timing and is diagnostic only.
#[derive(Debug, Clone, Copy, Default)]
pub struct TileStats {
    /// Combined work counters (event axis + batch axis + probe).
    pub sim: SimStats,
    /// Gate evals spent on the event axis (excluding the probe).
    pub event_node_evals: u64,
    /// Gate evals spent in dense batch passes (one per union-cone gate
    /// per 64-pattern block, amortized over the whole batch).
    pub batch_node_evals: u64,
    /// Gate evals spent by the serial probe stripe (Auto mode only).
    /// The probe is productive work: it is stripe 0's detection pass,
    /// run serially with per-fault profiling to drive the batch/event
    /// classification.
    pub probe_node_evals: u64,
    /// Resolved superblock width of the event axis.
    pub block_words: usize,
    /// Resolved pattern-stripe count.
    pub stripes: usize,
    /// Resolved fault-shard count.
    pub shards: usize,
    /// Resolved worker-thread count.
    pub threads: usize,
    /// Tiles executed (including replays of poisoned tiles).
    pub tiles: u64,
    /// Tiles executed by a worker away from its home shard
    /// (nondeterministic; diagnostic only).
    pub steals: u64,
    /// Committed dense multi-fault batches.
    pub batches: u64,
    /// Faults routed to the dense batch axis.
    pub batch_dense_faults: u64,
}

/// A budgeted tiled coverage run's payload.
#[derive(Debug, Clone)]
pub struct RobustTiledCoverage {
    /// Detection results over the patterns actually simulated.
    pub result: CoverageResult,
    /// Work counters and run shape.
    pub stats: TileStats,
    /// What recovery, if any, the run needed.  Unlike the 1D engine, an
    /// unresolved tile shortens the reported pattern prefix instead of
    /// leaving holes: the result is always a well-formed prefix, and
    /// `unresolved` lists the faults whose later stripes were abandoned.
    pub recovery: ShardRecovery,
}

/// What a tile records per fault: first in-stripe detection pattern
/// (coverage) or in-stripe detection count (counts).
#[derive(Clone, Copy, PartialEq, Eq)]
enum Mode {
    Coverage { drop: bool },
    Counts,
}

/// One committed dense multi-fault batch: up to [`BATCH_LANES`] faults of
/// one shard, their union cone in topological order, and the cone's
/// primary outputs.
struct Batch {
    /// Global fault indices, sorted by effect root (lane `k` = fault `k`).
    members: Vec<u32>,
    /// `(cone node index, lane)` injection overrides, sorted by node —
    /// applied after a node's lanes are computed, so several members may
    /// share a root (both polarities of a stem fault).
    overrides: Vec<(u32, u8)>,
    /// Union cone of the members' effect roots, ascending node id
    /// (= topological order).
    cone: Vec<NodeId>,
    /// Cone nodes that are primary outputs.
    outs: Vec<NodeId>,
}

/// Resolved run shape: the monomorphization width and thread/shard
/// counts.  Stripe ranges are computed inside the monomorphized engine,
/// where the probe split is known.
struct Layout {
    block_words: usize,
    shards: usize,
    threads: usize,
}

/// Widest supported width that fits the pattern count (no point drawing
/// lanes past the stream) and the lane-scratch cache budget.
fn auto_block_words(num_nodes: usize, num_patterns: u64) -> usize {
    let mut best = 1;
    for w in SUPPORTED_BLOCK_WORDS {
        let patterns_fit = 64 * (w as u64) <= num_patterns.max(64);
        let cache_fit = num_nodes.saturating_mul(w).saturating_mul(8) <= LANE_SCRATCH_BUDGET_BYTES;
        if patterns_fit && cache_fit {
            best = w;
        }
    }
    best
}

fn resolve_layout(
    circuit: &Circuit,
    num_faults: usize,
    num_patterns: u64,
    opts: &TileOptions,
) -> Layout {
    let block_words = if opts.block_words == 0 {
        auto_block_words(circuit.num_nodes(), num_patterns)
    } else {
        opts.block_words
    };
    let threads = recommended_threads(opts.threads, num_faults).max(1);
    let shards = if opts.fault_shards == 0 {
        threads
    } else {
        opts.fault_shards
    };
    Layout {
        block_words,
        shards,
        threads,
    }
}

/// Cuts the block range into stripe ranges.  When `probe_take > 0`, the
/// first stripe is exactly the probe's superblock (it runs serially);
/// the rest of the stream is cut into up to `requested` further stripes
/// (0 = auto), each a whole number of `w`-block superblocks, so
/// overstriping clamps to `ceil(blocks / w)` stripes.
fn stripe_ranges(
    total_blocks: usize,
    probe_take: usize,
    requested: usize,
    w: usize,
) -> Vec<std::ops::Range<usize>> {
    let mut stripes = Vec::new();
    if probe_take > 0 {
        stripes.push(0..probe_take);
    }
    let rest = total_blocks - probe_take;
    if rest > 0 {
        let max_stripes = rest.div_ceil(w);
        let requested = if requested == 0 {
            AUTO_MAX_STRIPES
        } else {
            requested
        }
        .clamp(1, max_stripes);
        // Round the stripe size up to a whole number of superblocks so
        // within-stripe grouping matches the serial engine's.
        let per = rest.div_ceil(requested).div_ceil(w) * w;
        let mut start = probe_take;
        while start < total_blocks {
            let end = (start + per).min(total_blocks);
            stripes.push(start..end);
            start = end;
        }
    }
    stripes
}

/// Output of the serial classification pass: per-shard batches and
/// per-shard event-axis members.
struct Classified {
    batches: Vec<Vec<Batch>>,
    event_members: Vec<Vec<u32>>,
}

fn classify(
    circuit: &Circuit,
    fault_roots: &[NodeId],
    partition: &FaultPartition,
    mode: BatchMode,
    profile: Option<&crate::event::FaultEvalProfile>,
    probe_blocks: u64,
    retired: &[bool],
) -> Classified {
    let shards = partition.num_shards();
    let mut out = Classified {
        batches: (0..shards).map(|_| Vec::new()).collect(),
        event_members: (0..shards).map(|_| Vec::new()).collect(),
    };
    for s in 0..shards {
        let mut candidates: Vec<u32> = Vec::new();
        for &id in partition.shard(s) {
            let i = id.index();
            if retired[i] {
                // Detected during the serial probe stripe under fault
                // dropping: later stripes cannot lower its first
                // detection, so it leaves both axes — exactly the serial
                // engine's drop.
                continue;
            }
            let is_candidate = match mode {
                BatchMode::Off => false,
                BatchMode::Force => true,
                BatchMode::Auto => profile.is_some_and(|p| {
                    p.evals[i] as f64 >= PROBE_MIN_EVALS_PER_BLOCK * probe_blocks as f64
                }),
            };
            if is_candidate {
                candidates.push(i as u32);
            } else {
                out.event_members[s].push(i as u32);
            }
        }
        // Shard fault order is root-sorted, so chunks of neighbours share
        // cone structure and the union cone stays tight.
        for chunk in candidates.chunks(BATCH_LANES) {
            let mut roots: Vec<NodeId> = chunk.iter().map(|&i| fault_roots[i as usize]).collect();
            roots.dedup();
            let cone = transitive_fanout(circuit, &roots);
            let cone_gate_evals = cone
                .iter()
                .filter(|&&n| circuit.node(n).kind() != GateKind::Input)
                .count() as u64;
            let commit = match mode {
                BatchMode::Force => true,
                BatchMode::Off => unreachable!("no candidates in Off mode"),
                BatchMode::Auto => {
                    let event_per_block: f64 = profile.map_or(0.0, |p| {
                        chunk.iter().map(|&i| p.evals[i as usize] as f64).sum::<f64>()
                            / probe_blocks as f64
                    });
                    (cone_gate_evals as f64) < BATCH_COMMIT_ALPHA * event_per_block
                }
            };
            if !commit {
                out.event_members[s].extend_from_slice(chunk);
                continue;
            }
            let overrides = chunk
                .iter()
                .enumerate()
                .map(|(k, &i)| (fault_roots[i as usize].index() as u32, k as u8))
                .collect();
            let outs = cone
                .iter()
                .copied()
                .filter(|&n| circuit.is_output(n))
                .collect();
            out.batches[s].push(Batch {
                members: chunk.to_vec(),
                overrides,
                cone,
                outs,
            });
        }
    }
    out
}

/// Per-worker scratch of the dense batch walk: faulty lanes and epoch
/// stamps over the whole node array, reused across passes.
struct BatchScratch {
    faulty: Vec<[u64; BATCH_LANES]>,
    touched: Vec<u32>,
    epoch: u32,
}

impl BatchScratch {
    fn new(num_nodes: usize) -> Self {
        BatchScratch {
            faulty: vec![[0; BATCH_LANES]; num_nodes],
            touched: vec![0; num_nodes],
            epoch: 0,
        }
    }

    fn bump(&mut self) -> u32 {
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            self.touched.fill(0);
            self.epoch = 1;
        }
        self.epoch
    }
}

/// Per-worker tile recorder: epoch-stamped per-fault slots so a tile's
/// (fault → value) pairs are collected without a per-tile allocation of
/// fault-list length.
struct TileRecorder {
    stamp: Vec<u32>,
    value: Vec<u64>,
    touched: Vec<u32>,
    epoch: u32,
}

impl TileRecorder {
    fn new(num_faults: usize) -> Self {
        TileRecorder {
            stamp: vec![0; num_faults],
            value: vec![0; num_faults],
            touched: Vec::new(),
            epoch: 0,
        }
    }

    fn begin_tile(&mut self) {
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            self.stamp.fill(0);
            self.epoch = 1;
        }
        self.touched.clear();
    }

    fn record_min(&mut self, i: u32, v: u64) {
        let idx = i as usize;
        if self.stamp[idx] != self.epoch {
            self.stamp[idx] = self.epoch;
            self.value[idx] = v;
            self.touched.push(i);
        } else if v < self.value[idx] {
            self.value[idx] = v;
        }
    }

    fn record_add(&mut self, i: u32, v: u64) {
        let idx = i as usize;
        if self.stamp[idx] == self.epoch {
            self.value[idx] += v;
        } else {
            self.stamp[idx] = self.epoch;
            self.value[idx] = v;
            self.touched.push(i);
        }
    }

    fn drain(&self) -> Vec<(u32, u64)> {
        self.touched
            .iter()
            .map(|&i| (i, self.value[i as usize]))
            .collect()
    }
}

/// One dense batch pass over one superblock: for each valid 64-pattern
/// lane `j` of the event sim's shared good values, walk the union cone
/// once with `[u64; BATCH_LANES]` lanes and compare against the broadcast
/// fault-free value at the cone's outputs.
#[allow(clippy::too_many_arguments)]
fn run_batch_pass<const W: usize>(
    circuit: &Circuit,
    good: &WideLogicSim<'_, W>,
    faults: &[Fault],
    batch: &Batch,
    mask: &[u64; W],
    base_pattern: u64,
    live: &mut u16,
    mode: Mode,
    scratch: &mut BatchScratch,
    rec: &mut TileRecorder,
    stats: &mut SimStats,
) {
    let members = batch.members.len();
    let mut inj = [0u64; BATCH_LANES];
    for j in 0..W {
        if mask[j] == 0 {
            break; // valid patterns are a prefix of the lane array
        }
        let live_now = *live;
        if live_now == 0 {
            break;
        }
        // Injection values and per-fault excitation for this block.
        let mut excited = 0u16;
        for (k, &fi) in batch.members.iter().enumerate() {
            let fault = faults[fi as usize];
            let root = fault.site.effect_root();
            let stuck = if fault.stuck_value { u64::MAX } else { 0 };
            // Lane `k`'s fanin values at fault `k`'s root are fault-free
            // even when another member's root sits upstream: lane `k`
            // carries only fault `k`'s effects, so the scalar good values
            // are the right injection inputs.
            let v = inject_root_lanes::<1>(circuit, fault, [stuck], |f| [good.value(f)[j]])[0];
            inj[k] = v;
            if v != good.value(root)[j] {
                excited |= 1 << k;
            }
        }
        stats.fault_blocks += u64::from(live_now.count_ones());
        stats.unexcited += u64::from((live_now & !excited).count_ones());
        if live_now & excited == 0 {
            continue; // every live lane computes fault-free: no walk needed
        }
        // Union-cone walk: one gate eval per cone gate, amortized over
        // the whole batch.  Fanins outside the cone broadcast the good
        // value; the injection overrides rewrite root lanes after eval.
        let epoch = scratch.bump();
        let mut ov = 0;
        for &n in &batch.cone {
            let ni = n.index();
            let node = circuit.node(n);
            let mut lanes = if node.kind() == GateKind::Input {
                [good.value(n)[j]; BATCH_LANES]
            } else {
                stats.node_evals += 1;
                eval_gate_lanes(
                    node.kind(),
                    node.fanin().iter().map(|f| {
                        if scratch.touched[f.index()] == epoch {
                            scratch.faulty[f.index()]
                        } else {
                            [good.value(*f)[j]; BATCH_LANES]
                        }
                    }),
                )
            };
            while ov < batch.overrides.len() && batch.overrides[ov].0 == ni as u32 {
                let k = batch.overrides[ov].1 as usize;
                lanes[k] = inj[k];
                ov += 1;
            }
            scratch.faulty[ni] = lanes;
            scratch.touched[ni] = epoch;
        }
        // XOR-difference detection per lane, masked to valid patterns.
        let mut det = [0u64; BATCH_LANES];
        for &o in &batch.outs {
            let lanes = scratch.faulty[o.index()];
            let g = good.value(o)[j];
            for (d, lane) in det.iter_mut().zip(lanes.iter()).take(members) {
                *d |= lane ^ g;
            }
        }
        for k in 0..members {
            let bit = 1u16 << k;
            if live_now & bit == 0 {
                continue;
            }
            let masked = det[k] & mask[j];
            if excited & bit != 0 && det[k] == 0 {
                stats.frontier_deaths += 1;
            }
            if masked != 0 {
                stats.detected_blocks += 1;
                let fi = batch.members[k];
                match mode {
                    Mode::Coverage { .. } => {
                        let p = base_pattern + 64 * j as u64 + u64::from(masked.trailing_zeros());
                        rec.record_min(fi, p);
                        // First in-stripe detection found: later patterns
                        // cannot lower the minimum, so retire the lane.
                        *live &= !bit;
                    }
                    Mode::Counts => rec.record_add(fi, u64::from(masked.count_ones())),
                }
            }
        }
    }
}

/// Runs one (shard, stripe) tile on the worker's scratch: the event pass
/// per superblock first (which also refreshes the shared good values),
/// then the shard's batch passes against those good values.
#[allow(clippy::too_many_arguments)]
fn run_tile<const W: usize>(
    circuit: &Circuit,
    faults: &[Fault],
    blocks: &[PatternBlock],
    block_start: &[u64],
    range: std::ops::Range<usize>,
    event_members: &[u32],
    batches: &[Batch],
    mode: Mode,
    sim: &mut EventSimulator<'_, W>,
    sb: &mut SuperBlock<W>,
    scratch: &mut BatchScratch,
    rec: &mut TileRecorder,
    batch_stats: &mut SimStats,
) -> Vec<(u32, u64)> {
    rec.begin_tile();
    let mut worklist = FaultWorklist::from_indices(event_members);
    let mut live: Vec<u16> = batches
        .iter()
        .map(|b| ((1u32 << b.members.len()) - 1) as u16)
        .collect();
    let drop = matches!(mode, Mode::Coverage { drop: true });
    let mut b = range.start;
    while b < range.end {
        let take = superblock_split(&blocks[b..range.end], W);
        sb.refill_from_blocks(&blocks[b..b + take]);
        let mask = sb.mask();
        let base = block_start[b];
        sim.detect_superblock_worklist(&sb.words, mask, &mut worklist, drop, |i, w| match mode {
            Mode::Coverage { .. } => {
                let bit = first_set_bit(&w).expect("on_detect implies a set bit");
                rec.record_min(i as u32, base + u64::from(bit));
            }
            Mode::Counts => rec.record_add(i as u32, u64::from(count_set_bits(&w))),
        });
        for (batch, live) in batches.iter().zip(live.iter_mut()) {
            if *live == 0 {
                continue;
            }
            run_batch_pass::<W>(
                circuit,
                sim.good_sim(),
                faults,
                batch,
                &mask,
                base,
                live,
                mode,
                scratch,
                rec,
                batch_stats,
            );
        }
        b += take;
    }
    rec.drain()
}

/// Serial replay of a poisoned tile with the event engine over the
/// shard's sublist (batch members included: batch and event passes are
/// bit-identical, so replaying everything on one axis is exact).
fn replay_tile_event<const W: usize>(
    circuit: &Circuit,
    sublist: &FaultList,
    blocks: &[PatternBlock],
    block_start: &[u64],
    range: std::ops::Range<usize>,
    mode: Mode,
) -> (Vec<(u32, u64)>, SimStats) {
    let mut sim = EventSimulator::<W>::new(circuit, sublist);
    let mut rec = TileRecorder::new(sublist.len());
    rec.begin_tile();
    let mut worklist = FaultWorklist::full(sublist.len());
    let drop = matches!(mode, Mode::Coverage { drop: true });
    let mut sb = SuperBlock::<W>::empty(circuit.num_inputs());
    let mut b = range.start;
    while b < range.end {
        let take = superblock_split(&blocks[b..range.end], W);
        sb.refill_from_blocks(&blocks[b..b + take]);
        let base = block_start[b];
        sim.detect_superblock_worklist(&sb.words, sb.mask(), &mut worklist, drop, |i, w| {
            match mode {
                Mode::Coverage { .. } => {
                    let bit = first_set_bit(&w).expect("on_detect implies a set bit");
                    rec.record_min(i as u32, base + u64::from(bit));
                }
                Mode::Counts => rec.record_add(i as u32, u64::from(count_set_bits(&w))),
            }
        });
        b += take;
    }
    (rec.drain(), sim.stats())
}

/// Dense-engine replay of a poisoned tile — the last rung of the ladder.
fn replay_tile_dense(
    circuit: &Circuit,
    sublist: &FaultList,
    blocks: &[PatternBlock],
    block_start: &[u64],
    range: std::ops::Range<usize>,
    mode: Mode,
) -> (Vec<(u32, u64)>, SimStats) {
    let mut sim = FaultSimulator::new(circuit, sublist);
    let mut rec = TileRecorder::new(sublist.len());
    rec.begin_tile();
    let mut worklist = FaultWorklist::full(sublist.len());
    let drop = matches!(mode, Mode::Coverage { drop: true });
    for b in range {
        let block = &blocks[b];
        let base = block_start[b];
        sim.detect_block_worklist(&block.words, block.mask(), &mut worklist, drop, |i, w| {
            match mode {
                Mode::Coverage { .. } => {
                    rec.record_min(i as u32, base + u64::from(w.trailing_zeros()));
                }
                Mode::Counts => rec.record_add(i as u32, u64::from(w.count_ones())),
            }
        });
    }
    (rec.drain(), sim.stats())
}

/// Per-tile merged values, tagged by stripe so an interrupted run can
/// keep exactly the completed-stripe prefix.
struct TileOutput {
    stripe: usize,
    values: Vec<(u32, u64)>,
}

/// Everything the tile scheduler reports back to the public entry points.
struct TiledRaw {
    outputs: Vec<TileOutput>,
    stats: TileStats,
    recovery: ShardRecovery,
    /// Stripes fully completed as a prefix (outputs beyond are dropped).
    prefix_stripes: usize,
    streamed: u64,
    tripped: Option<BudgetExceeded>,
}

fn lock_shared<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    // Tile panics are caught before the lock is taken, so poisoning only
    // happens on a programmer error in the bookkeeping itself; the state
    // is still consistent for reporting.
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// The 2D scheduler: materialized blocks in, per-tile merged values out.
#[allow(clippy::too_many_arguments)]
fn run_tiled<const W: usize>(
    circuit: &Circuit,
    faults: &FaultList,
    blocks: &[PatternBlock],
    layout: &Layout,
    requested_stripes: usize,
    mode: Mode,
    batch_mode: BatchMode,
    budget: Option<&Budget>,
) -> TiledRaw {
    let num_faults = faults.len();
    let partition = FaultPartition::cone_locality(circuit, faults, layout.shards);
    let shards = partition.num_shards();
    let fault_vec: Vec<Fault> = faults.iter().map(|(_, f)| f).collect();
    let fault_roots: Vec<NodeId> = fault_vec.iter().map(|f| f.site.effect_root()).collect();
    let drop = matches!(mode, Mode::Coverage { drop: true });

    let block_start: Vec<u64> = blocks
        .iter()
        .scan(0u64, |acc, b| {
            let start = *acc;
            *acc += u64::from(b.len);
            Some(start)
        })
        .collect();
    let total_patterns: u64 = block_start.last().map_or(0, |&s| s)
        + blocks.last().map_or(0, |b| u64::from(b.len));

    // An already-spent budget (zero deadline, cancellation) stops the run
    // before the probe; the result is the empty prefix.
    let mut early_trip: Option<BudgetExceeded> = None;
    if let Some(budget) = budget {
        if let Err(reason) = budget.check_in(0, 0) {
            early_trip = Some(reason);
        }
    }

    // The serial probe stripe (Auto mode): one event pass over the first
    // superblock with per-fault profiling, recording real detections.
    // It doubles as the classification probe *and* stripe 0's detection
    // pass, so profiling costs no redundant simulation; under fault
    // dropping, faults it detects retire from every later stripe —
    // exactly the serial engine's drop (stripe 0 holds the stream's
    // earliest patterns, so no later stripe can lower their minimum).
    let probe_take = if batch_mode == BatchMode::Auto && !blocks.is_empty() && early_trip.is_none()
    {
        superblock_split(blocks, W)
    } else {
        0
    };
    let mut probe_output: Option<Vec<(u32, u64)>> = None;
    let mut probe_stats = SimStats::default();
    let mut profile = None;
    let mut retired = vec![false; num_faults];
    if probe_take > 0 {
        let mut sim = EventSimulator::<W>::new(circuit, faults);
        sim.enable_eval_profile();
        let mut worklist = FaultWorklist::full(num_faults);
        let sb = SuperBlock::<W>::from_blocks(&blocks[..probe_take]);
        let mut rec = TileRecorder::new(num_faults);
        rec.begin_tile();
        sim.detect_superblock_worklist(&sb.words, sb.mask(), &mut worklist, drop, |i, w| {
            match mode {
                Mode::Coverage { .. } => {
                    let bit = first_set_bit(&w).expect("on_detect implies a set bit");
                    rec.record_min(i as u32, u64::from(bit));
                }
                Mode::Counts => rec.record_add(i as u32, u64::from(count_set_bits(&w))),
            }
        });
        let values = rec.drain();
        if drop {
            for &(i, _) in &values {
                retired[i as usize] = true;
            }
        }
        probe_stats = sim.stats();
        profile = sim.take_eval_profile();
        probe_output = Some(values);
    }
    let classified = classify(
        circuit,
        &fault_roots,
        &partition,
        batch_mode,
        profile.as_ref(),
        probe_take.max(1) as u64,
        &retired,
    );
    let layout_stripes = stripe_ranges(blocks.len(), probe_take, requested_stripes, W);
    let stripes = layout_stripes.len();

    struct Shared {
        outputs: Vec<TileOutput>,
        completed: Vec<bool>,
        poisoned: Vec<(usize, usize)>,
        worker_panics: usize,
        tripped: Option<BudgetExceeded>,
        tiles: u64,
        steals: u64,
        event_stats: SimStats,
        batch_stats: SimStats,
    }
    let mut completed = vec![false; shards * stripes];
    if probe_output.is_some() {
        // The probe covered stripe 0 for every shard at once.
        for s in 0..shards {
            completed[s * stripes] = true;
        }
    }
    let shared = Mutex::new(Shared {
        outputs: Vec::new(),
        completed,
        poisoned: Vec::new(),
        worker_panics: 0,
        tripped: early_trip,
        tiles: 0,
        steals: 0,
        event_stats: SimStats::default(),
        batch_stats: SimStats::default(),
    });
    let first_stripe = usize::from(probe_output.is_some());
    let cursors: Vec<AtomicUsize> = (0..shards)
        .map(|_| AtomicUsize::new(first_stripe))
        .collect();
    let stop = AtomicBool::new(early_trip.is_some());

    std::thread::scope(|scope| {
        for wi in 0..layout.threads {
            let shared = &shared;
            let cursors = &cursors;
            let stop = &stop;
            let classified = &classified;
            let fault_vec = &fault_vec;
            let block_start = &block_start;
            let layout_stripes = &layout_stripes;
            scope.spawn(move || {
                let mut sim = EventSimulator::<W>::new(circuit, faults);
                let mut sb = SuperBlock::<W>::empty(circuit.num_inputs());
                let mut scratch = BatchScratch::new(circuit.num_nodes());
                let mut rec = TileRecorder::new(num_faults);
                let mut batch_stats = SimStats::default();
                let home = wi % shards;
                loop {
                    if stop.load(Ordering::Relaxed) {
                        break;
                    }
                    if let Some(budget) = budget {
                        // Tile-boundary check-in: the eval axis resolved
                        // upfront to the pattern clip, so only deadline,
                        // cancellation, and injections can trip here.
                        if let Err(reason) = budget.check_in(0, 0) {
                            stop.store(true, Ordering::Relaxed);
                            lock_shared(shared).tripped.get_or_insert(reason);
                            break;
                        }
                    }
                    let mut claim = None;
                    for off in 0..shards {
                        let s = (home + off) % shards;
                        let t = cursors[s].fetch_add(1, Ordering::Relaxed);
                        if t < stripes {
                            claim = Some((s, t, off != 0));
                            break;
                        }
                    }
                    let Some((s, t, stolen)) = claim else { break };
                    let attempt = catch_unwind(AssertUnwindSafe(
                        || -> Result<Vec<(u32, u64)>, InjectedFailure> {
                            failpoint::hit(sites::TILE_RUN)?;
                            Ok(run_tile::<W>(
                                circuit,
                                fault_vec,
                                blocks,
                                block_start,
                                layout_stripes[t].clone(),
                                &classified.event_members[s],
                                &classified.batches[s],
                                mode,
                                &mut sim,
                                &mut sb,
                                &mut scratch,
                                &mut rec,
                                &mut batch_stats,
                            ))
                        },
                    ));
                    let panicked = attempt.is_err();
                    {
                        let mut sh = lock_shared(shared);
                        sh.tiles += 1;
                        if stolen {
                            sh.steals += 1;
                        }
                        match attempt {
                            Ok(Ok(values)) => {
                                sh.outputs.push(TileOutput { stripe: t, values });
                                sh.completed[s * stripes + t] = true;
                            }
                            Ok(Err(_)) | Err(_) => {
                                sh.worker_panics += usize::from(panicked);
                                sh.poisoned.push((s, t));
                            }
                        }
                    }
                    if panicked {
                        // A panic mid-drain can leave bucket chains and
                        // epoch stamps inconsistent: rebuild the scratch
                        // before touching another tile.
                        sim = EventSimulator::<W>::new(circuit, faults);
                        sb = SuperBlock::<W>::empty(circuit.num_inputs());
                        scratch = BatchScratch::new(circuit.num_nodes());
                        rec = TileRecorder::new(num_faults);
                    }
                }
                let mut sh = lock_shared(shared);
                sh.event_stats.merge(&sim.stats());
                sh.batch_stats.merge(&batch_stats);
            });
        }
    });

    let shared = shared.into_inner().unwrap_or_else(PoisonError::into_inner);
    let Shared {
        mut outputs,
        mut completed,
        poisoned,
        worker_panics,
        tripped,
        mut tiles,
        steals,
        event_stats,
        batch_stats,
    } = shared;
    if let Some(values) = probe_output {
        outputs.push(TileOutput { stripe: 0, values });
    }

    // Replay ladder for poisoned tiles (stolen or home alike): serial
    // same-engine replay first, dense second — both over the shard's full
    // sublist, which covers batch members exactly.
    let mut recovery = ShardRecovery {
        worker_panics,
        ..ShardRecovery::default()
    };
    let mut replay_event_stats = SimStats::default();
    let mut replay_dense_stats = SimStats::default();
    for &(s, t) in &poisoned {
        let sublist = partition.sublist(faults, s);
        let range = layout_stripes[t].clone();
        let to_global = |values: Vec<(u32, u64)>| -> Vec<(u32, u64)> {
            values
                .into_iter()
                .map(|(local, v)| (partition.shard(s)[local as usize].index() as u32, v))
                .collect()
        };
        recovery.replays += 1;
        recovery.ladder.record(
            DegradeStep::ShardRequeue,
            format!("tile (shard {s}, stripe {t}) poisoned; serial event replay"),
        );
        tiles += 1;
        let attempt = catch_unwind(AssertUnwindSafe(|| {
            replay_tile_event::<W>(circuit, &sublist, blocks, &block_start, range.clone(), mode)
        }));
        match attempt {
            Ok((values, stats)) => {
                replay_event_stats.merge(&stats);
                outputs.push(TileOutput {
                    stripe: t,
                    values: to_global(values),
                });
                completed[s * stripes + t] = true;
                continue;
            }
            Err(_) => recovery.worker_panics += 1,
        }
        recovery.replays += 1;
        recovery.ladder.record(
            DegradeStep::EventToDense,
            format!("tile (shard {s}, stripe {t}) event replay failed; dense replay"),
        );
        tiles += 1;
        let attempt = catch_unwind(AssertUnwindSafe(|| {
            replay_tile_dense(circuit, &sublist, blocks, &block_start, range, mode)
        }));
        match attempt {
            Ok((values, stats)) => {
                replay_dense_stats.merge(&stats);
                outputs.push(TileOutput {
                    stripe: t,
                    values: to_global(values),
                });
                completed[s * stripes + t] = true;
            }
            Err(_) => {
                recovery.worker_panics += 1;
                recovery
                    .unresolved
                    .extend(partition.shard(s).iter().copied());
            }
        }
    }

    // Keep the maximal prefix of fully-completed stripes: every kept
    // stripe has every shard's tile merged, so the result is exactly the
    // serial prefix over those patterns.
    let prefix_stripes = (0..stripes)
        .take_while(|&t| (0..shards).all(|s| completed[s * stripes + t]))
        .count();
    let streamed = if prefix_stripes == stripes {
        total_patterns
    } else {
        block_start[layout_stripes[prefix_stripes].start]
    };
    let tripped = tripped.or_else(|| {
        // No budget trip, yet an incomplete stripe: replays were
        // exhausted, so surface the injection as the interrupt reason.
        (prefix_stripes < stripes).then_some(BudgetExceeded::Injected)
    });

    let mut sim_total = event_stats;
    sim_total.merge(&batch_stats);
    sim_total.merge(&probe_stats);
    sim_total.merge(&replay_event_stats);
    sim_total.merge(&replay_dense_stats);
    let stats = TileStats {
        sim: sim_total,
        event_node_evals: event_stats.node_evals
            + replay_event_stats.node_evals
            + replay_dense_stats.node_evals,
        batch_node_evals: batch_stats.node_evals,
        probe_node_evals: probe_stats.node_evals,
        block_words: W,
        stripes,
        shards,
        threads: layout.threads,
        tiles,
        steals,
        batches: classified.batches.iter().map(Vec::len).sum::<usize>() as u64,
        batch_dense_faults: classified
            .batches
            .iter()
            .flatten()
            .map(|b| b.members.len())
            .sum::<usize>() as u64,
    };
    TiledRaw {
        outputs,
        stats,
        recovery,
        prefix_stripes,
        streamed,
        tripped,
    }
}

/// Draws the whole pattern stream upfront (sequentially, so the blocks
/// are exactly what the serial engine would see), 64 patterns per block.
fn draw_blocks(source: &mut impl PatternSource, num_patterns: u64) -> Vec<PatternBlock> {
    let mut blocks = Vec::new();
    let mut done = 0u64;
    while done < num_patterns {
        let block = source.next_block((num_patterns - done).min(64) as u32);
        if block.len == 0 {
            break; // defensive: a dead source must not loop forever
        }
        done += u64::from(block.len);
        blocks.push(block);
    }
    blocks
}

fn run_dispatch(
    circuit: &Circuit,
    faults: &FaultList,
    source: &mut impl PatternSource,
    num_patterns: u64,
    mode: Mode,
    opts: &TileOptions,
    budget: Option<&Budget>,
) -> (TiledRaw, u64) {
    opts.validate().expect("invalid TileOptions");
    let blocks = draw_blocks(source, num_patterns);
    let layout = resolve_layout(circuit, faults.len(), num_patterns, opts);
    let raw = with_block_words!(layout.block_words, W => {
        run_tiled::<W>(
            circuit,
            faults,
            &blocks,
            &layout,
            opts.pattern_stripes,
            mode,
            opts.batch,
            budget,
        )
    });
    let drawn: u64 = blocks.iter().map(|b| u64::from(b.len)).sum();
    (raw, drawn)
}

fn merge_coverage(raw: &TiledRaw, num_faults: usize) -> Vec<Option<u64>> {
    let mut detected_at: Vec<Option<u64>> = vec![None; num_faults];
    for out in &raw.outputs {
        if out.stripe >= raw.prefix_stripes {
            continue;
        }
        for &(i, p) in &out.values {
            let slot = &mut detected_at[i as usize];
            if slot.is_none_or(|prev| p < prev) {
                *slot = Some(p);
            }
        }
    }
    detected_at
}

/// [`crate::fault_coverage`] on the 2D tiled engine: bit-identical to the
/// serial engines for every thread count, stripe size, shard count, and
/// steal order.  Also returns the run's [`TileStats`].
///
/// # Panics
///
/// Panics if `opts` fails [`TileOptions::validate`], or if a poisoned
/// tile exhausted its replay ladder (impossible without injected
/// failures; use [`fault_coverage_tiled_robust`] to handle it
/// structurally).
pub fn fault_coverage_tiled(
    circuit: &Circuit,
    faults: &FaultList,
    mut source: impl PatternSource,
    num_patterns: u64,
    drop: bool,
    opts: &TileOptions,
) -> (CoverageResult, TileStats) {
    let (raw, drawn) = run_dispatch(
        circuit,
        faults,
        &mut source,
        num_patterns,
        Mode::Coverage { drop },
        opts,
        None,
    );
    assert!(
        raw.recovery.fully_recovered() && raw.prefix_stripes == raw.stats.stripes,
        "tiled run left unresolved tiles; use fault_coverage_tiled_robust"
    );
    let detected_at = merge_coverage(&raw, faults.len());
    (CoverageResult::new(detected_at, drawn), raw.stats)
}

/// [`crate::detection_counts`] on the 2D tiled engine; see
/// [`fault_coverage_tiled`].
///
/// # Panics
///
/// Panics under the same conditions as [`fault_coverage_tiled`].
pub fn detection_counts_tiled(
    circuit: &Circuit,
    faults: &FaultList,
    mut source: impl PatternSource,
    num_patterns: u64,
    opts: &TileOptions,
) -> (Vec<u64>, TileStats) {
    let (raw, _) = run_dispatch(
        circuit,
        faults,
        &mut source,
        num_patterns,
        Mode::Counts,
        opts,
        None,
    );
    assert!(
        raw.recovery.fully_recovered() && raw.prefix_stripes == raw.stats.stripes,
        "tiled run left unresolved tiles; use fault_coverage_tiled_robust"
    );
    let mut counts = vec![0u64; faults.len()];
    for out in &raw.outputs {
        for &(i, c) in &out.values {
            counts[i as usize] += c;
        }
    }
    (counts, raw.stats)
}

/// Budgeted, panic-isolated [`fault_coverage_tiled`].
///
/// The eval axis resolves upfront to the same deterministic pattern clip
/// as [`crate::fault_coverage_robust`]; deadline/cancel trips and
/// exhausted tile replays keep the maximal prefix of fully-completed
/// stripes, so the partial is always a well-formed pattern prefix.
///
/// # Panics
///
/// Panics if `opts` fails [`TileOptions::validate`].
pub fn fault_coverage_tiled_robust(
    circuit: &Circuit,
    faults: &FaultList,
    mut source: impl PatternSource,
    num_patterns: u64,
    drop: bool,
    opts: &TileOptions,
    budget: &Budget,
) -> RunOutcome<RobustTiledCoverage> {
    let (target, _) = eval_clip(circuit, num_patterns, budget);
    let (raw, _) = run_dispatch(
        circuit,
        faults,
        &mut source,
        target,
        Mode::Coverage { drop },
        opts,
        Some(budget),
    );
    let detected_at = merge_coverage(&raw, faults.len());
    wrap_outcome(
        RobustTiledCoverage {
            result: CoverageResult::new(detected_at, raw.streamed),
            stats: raw.stats,
            recovery: raw.recovery,
        },
        raw.streamed,
        raw.tripped,
        target,
        num_patterns,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault_sim::{detection_counts, fault_coverage};
    use crate::patterns::WeightedPatterns;
    use wrt_circuit::parse_bench;

    fn adder() -> Circuit {
        parse_bench(
            "INPUT(a)\nINPUT(b)\nINPUT(cin)\nOUTPUT(s)\nOUTPUT(cout)\n\
             x1 = XOR(a, b)\ns = XOR(x1, cin)\na1 = AND(a, b)\na2 = AND(x1, cin)\n\
             cout = OR(a1, a2)\n",
        )
        .unwrap()
    }

    fn opts(words: usize, stripes: usize, shards: usize, threads: usize, batch: BatchMode) -> TileOptions {
        TileOptions {
            block_words: words,
            pattern_stripes: stripes,
            fault_shards: shards,
            threads,
            batch,
        }
    }

    #[test]
    fn tiled_matches_serial_on_adder() {
        let c = adder();
        let faults = wrt_fault::FaultList::full(&c);
        let serial = fault_coverage(&c, &faults, WeightedPatterns::equiprobable(3, 7), 500, true);
        for batch in [BatchMode::Auto, BatchMode::Off, BatchMode::Force] {
            let (tiled, stats) = fault_coverage_tiled(
                &c,
                &faults,
                WeightedPatterns::equiprobable(3, 7),
                500,
                true,
                &opts(2, 3, 2, 3, batch),
            );
            assert_eq!(serial.detected_at(), tiled.detected_at(), "{batch:?}");
            // 500 patterns = 8 blocks at W = 2.  Auto mode: a 2-block
            // probe stripe plus 3 requested stripes over the remaining 6
            // blocks.  Off/Force: no probe; 3 requested stripes round up
            // to whole superblocks (4 blocks each), giving 2.
            if batch == BatchMode::Auto {
                assert_eq!(stats.stripes, 4);
                // Stripe 0 is the serial probe: workers tile the rest.
                assert_eq!(stats.tiles, ((stats.stripes - 1) * stats.shards) as u64);
                assert!(stats.probe_node_evals > 0);
            } else {
                assert_eq!(stats.stripes, 2);
                assert_eq!(stats.tiles, (stats.stripes * stats.shards) as u64);
                assert_eq!(stats.probe_node_evals, 0);
            }
            if batch == BatchMode::Force {
                assert_eq!(stats.batch_dense_faults, faults.len() as u64);
                assert!(stats.batch_node_evals > 0);
            }
            if batch == BatchMode::Off {
                assert_eq!(stats.batch_dense_faults, 0);
                assert_eq!(stats.batch_node_evals, 0);
            }
        }
    }

    #[test]
    fn tiled_counts_match_serial() {
        let c = adder();
        let faults = wrt_fault::FaultList::full(&c);
        let serial = detection_counts(&c, &faults, WeightedPatterns::equiprobable(3, 9), 700);
        for batch in [BatchMode::Off, BatchMode::Force] {
            let (counts, _) = detection_counts_tiled(
                &c,
                &faults,
                WeightedPatterns::equiprobable(3, 9),
                700,
                &opts(4, 4, 3, 2, batch),
            );
            assert_eq!(serial, counts, "{batch:?}");
        }
    }

    #[test]
    fn overstriping_clamps_to_superblock_granularity() {
        let c = adder();
        let faults = wrt_fault::FaultList::full(&c);
        // 500 patterns = 8 blocks; W = 2 admits at most 4 stripes.
        let (result, stats) = fault_coverage_tiled(
            &c,
            &faults,
            WeightedPatterns::equiprobable(3, 1),
            500,
            true,
            &opts(2, 1000, 100, 5, BatchMode::Auto),
        );
        assert_eq!(stats.stripes, 4);
        assert!(stats.shards <= faults.len());
        let serial = fault_coverage(&c, &faults, WeightedPatterns::equiprobable(3, 1), 500, true);
        assert_eq!(serial.detected_at(), result.detected_at());
    }

    #[test]
    fn auto_layout_resolves_width_by_patterns_and_cache() {
        assert_eq!(auto_block_words(100, 64), 1);
        assert_eq!(auto_block_words(100, 2048), 16);
        assert_eq!(auto_block_words(100, 100_000), 16);
        // A 120k-node circuit busts the 16-lane scratch budget.
        assert_eq!(auto_block_words(120_000, 100_000), 8);
    }

    #[test]
    fn empty_faults_and_zero_patterns_are_fine() {
        let c = adder();
        let empty = wrt_fault::FaultList::from_faults(vec![]);
        let (result, _) = fault_coverage_tiled(
            &c,
            &empty,
            WeightedPatterns::equiprobable(3, 1),
            64,
            true,
            &TileOptions::default(),
        );
        assert_eq!(result.num_faults(), 0);
        let faults = wrt_fault::FaultList::full(&c);
        let (result, stats) = fault_coverage_tiled(
            &c,
            &faults,
            WeightedPatterns::equiprobable(3, 1),
            0,
            true,
            &TileOptions::default(),
        );
        assert_eq!(result.num_patterns(), 0);
        assert_eq!(stats.stripes, 0);
        assert!(result.detected_at().iter().all(Option::is_none));
    }

    #[test]
    fn options_validation() {
        assert!(TileOptions::default().validate().is_ok());
        assert!(opts(16, 0, 0, 0, BatchMode::Auto).validate().is_ok());
        assert!(opts(3, 0, 0, 0, BatchMode::Auto).validate().is_err());
        assert!(opts(32, 0, 0, 0, BatchMode::Auto).validate().is_err());
    }

    #[test]
    fn robust_eval_budget_clips_deterministically() {
        let c = adder();
        let faults = wrt_fault::FaultList::full(&c);
        let nodes = c.num_nodes() as u64;
        let budget = Budget::unlimited().with_max_evals(100 * nodes);
        let clipped =
            fault_coverage(&c, &faults, WeightedPatterns::equiprobable(3, 5), 100, false);
        for threads in [1, 3] {
            let outcome = fault_coverage_tiled_robust(
                &c,
                &faults,
                WeightedPatterns::equiprobable(3, 5),
                100_000,
                false,
                &opts(2, 2, 2, threads, BatchMode::Auto),
                &budget,
            );
            assert_eq!(outcome.interrupt_reason(), Some(BudgetExceeded::Evals));
            let rc = outcome.into_value();
            assert_eq!(rc.result.detected_at(), clipped.detected_at());
            assert!(rc.recovery.is_clean());
        }
    }

    #[test]
    fn robust_zero_deadline_interrupts_with_a_clean_prefix() {
        let c = adder();
        let faults = wrt_fault::FaultList::full(&c);
        let budget = Budget::unlimited().with_time_limit(std::time::Duration::ZERO);
        let outcome = fault_coverage_tiled_robust(
            &c,
            &faults,
            WeightedPatterns::equiprobable(3, 5),
            1000,
            true,
            &opts(1, 4, 2, 2, BatchMode::Auto),
            &budget,
        );
        assert_eq!(outcome.interrupt_reason(), Some(BudgetExceeded::Deadline));
        let rc = outcome.into_value();
        assert_eq!(rc.result.num_patterns(), 0);
        assert!(rc.result.detected_at().iter().all(Option::is_none));
    }

    #[test]
    fn batch_members_leave_the_event_axis() {
        let c = adder();
        let faults = wrt_fault::FaultList::full(&c);
        let (_, stats) = fault_coverage_tiled(
            &c,
            &faults,
            WeightedPatterns::equiprobable(3, 3),
            512,
            true,
            &opts(2, 2, 1, 1, BatchMode::Force),
        );
        // Every fault is batched: the event axis does no propagation at
        // all (its worklists are empty), so all fault-block attempts come
        // from batch passes and the probe is skipped in Force mode.
        assert_eq!(stats.event_node_evals, 0);
        assert_eq!(stats.probe_node_evals, 0);
        assert!(stats.batch_node_evals > 0);
        assert_eq!(stats.batch_dense_faults, faults.len() as u64);
        assert!(stats.batches >= 1);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::fault_sim::{detection_counts, fault_coverage};
    use crate::patterns::WeightedPatterns;
    use crate::test_support::arb_circuit;
    use proptest::prelude::*;
    use wrt_fault::FaultList;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(40))]

        /// The 2D engine is bit-identical to the serial dense engine —
        /// `detected_at` and `counts` — across random circuits, widths,
        /// thread counts, stripe sizes (overstriping included), shard
        /// counts (oversharding included), drop modes, and batch modes.
        #[test]
        fn tiled_is_bit_identical_to_serial(
            circuit in arb_circuit(),
            weights in proptest::collection::vec(0.05f64..0.95, 4),
            shape in (0usize..6, 1usize..6, 0usize..40, 0usize..30),
            run in (0u64..1_000, 1u64..700, any::<bool>(), 0usize..3),
        ) {
            let (width_idx, threads, stripes, shards) = shape;
            let (seed, patterns, drop, batch_idx) = run;
            let faults = FaultList::full(&circuit);
            let words = if width_idx < SUPPORTED_BLOCK_WORDS.len() {
                SUPPORTED_BLOCK_WORDS[width_idx]
            } else {
                0 // auto
            };
            let batch = [BatchMode::Auto, BatchMode::Off, BatchMode::Force][batch_idx];
            let topts = TileOptions {
                block_words: words,
                pattern_stripes: stripes,
                fault_shards: shards,
                threads,
                batch,
            };

            let dense = fault_coverage(
                &circuit, &faults,
                WeightedPatterns::new(weights.clone(), seed),
                patterns, drop,
            );
            let (tiled, stats) = fault_coverage_tiled(
                &circuit, &faults,
                WeightedPatterns::new(weights.clone(), seed),
                patterns, drop, &topts,
            );
            prop_assert_eq!(dense.detected_at(), tiled.detected_at());
            prop_assert!(stats.sim.fault_blocks > 0 || faults.is_empty());

            let counts = detection_counts(
                &circuit, &faults,
                WeightedPatterns::new(weights.clone(), seed),
                patterns,
            );
            let (counts_tiled, _) = detection_counts_tiled(
                &circuit, &faults,
                WeightedPatterns::new(weights, seed),
                patterns, &topts,
            );
            prop_assert_eq!(&counts, &counts_tiled);
        }

        /// The robust tiled entry over an unlimited budget is complete,
        /// clean, and bit-identical to serial.
        #[test]
        fn tiled_robust_unlimited_matches_serial(
            circuit in arb_circuit(),
            seed in 0u64..200,
            threads in 1usize..5,
            stripes in 0usize..10,
        ) {
            let faults = FaultList::primary_inputs(&circuit);
            let serial = fault_coverage(
                &circuit, &faults,
                WeightedPatterns::equiprobable(4, seed),
                300, true,
            );
            let outcome = fault_coverage_tiled_robust(
                &circuit, &faults,
                WeightedPatterns::equiprobable(4, seed),
                300, true,
                &TileOptions {
                    pattern_stripes: stripes,
                    threads,
                    ..TileOptions::default()
                },
                &Budget::unlimited(),
            );
            prop_assert!(outcome.is_complete());
            let rc = outcome.into_value();
            prop_assert!(rc.recovery.is_clean());
            prop_assert_eq!(serial.detected_at(), rc.result.detected_at());
        }
    }
}

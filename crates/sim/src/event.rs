//! Event-driven sparse PPSFP fault propagation over multi-word superblocks.
//!
//! The dense engine ([`crate::FaultSimulator`]) re-evaluates **every node
//! of a fault's output cone** for every 64-pattern block, even when the
//! fault effect dies one gate past the injection site.  The engine here
//! replaces that cone walk with *event scheduling*: a node whose faulty
//! value differs from the fault-free value pushes only its fanouts onto a
//! level-ordered ready set, untouched-fanin nodes are never evaluated, and
//! propagation terminates the moment the active frontier drains.  Faults
//! whose effects die early cost `O(frontier)` instead of `O(cone)`.
//!
//! On top of that, blocks are widened from one `u64` to
//! `W ∈ {1, 2, 4, 8, 16}` words ([`SuperBlock`]): each scheduled node
//! evaluates `64 * W` patterns
//! at once through fixed-size `[u64; W]` lanes
//! ([`crate::eval_gate_lanes`]), amortizing the scheduling and good-value
//! lookups across `W`× more patterns and giving the autovectorizer
//! straight-line SIMD bodies.
//!
//! # Event queue invariants
//!
//! The ready set is a vector of per-level buckets reused across faults:
//!
//! 1. **Monotone levels.**  A node is only ever scheduled by one of its
//!    fanins (or the injection root), whose level is strictly smaller, so
//!    scheduling always targets a level *above* the bucket currently being
//!    drained.  Draining buckets in increasing level order therefore
//!    evaluates every node after all of its touched fanins — the same
//!    order guarantee the dense engine gets from topologically sorted
//!    cones.
//! 2. **At-most-once scheduling.**  `queued[n] == epoch` marks nodes
//!    already in the ready set for the current (fault, superblock) pass;
//!    re-touching a fanin of `n` does not enqueue `n` twice.  A level
//!    enters the min-heap of occupied levels exactly when its bucket
//!    turns non-empty, so the drain loop hops directly between occupied
//!    levels — empty levels of a deep circuit cost nothing.
//! 3. **Termination.**  The sweep stops the moment the occupied-level
//!    heap drains, so a fault effect that dies after `k` gates costs `k`
//!    evaluations plus `O(k log k)` heap traffic — never a full cone
//!    walk.
//! 4. **Epoch reuse.**  Buckets are always left empty between passes;
//!    `touched`/`queued` stamps are invalidated by bumping `epoch`
//!    (with a full reset on the extremely rare u32 wrap), so per-fault
//!    setup is O(1).
//!
//! Detection results are bit-identical to the dense engine for every
//! block width, drop mode, and shard count — property-tested in this
//! module and relied on by the whole stack (`MonteCarloEngine`, the CLI,
//! the benches).

use wrt_circuit::{Circuit, GateKind, NodeId};
use wrt_fault::{Fault, FaultList, FaultSite};

use crate::coverage::CoverageResult;
use crate::fault_sim::FaultWorklist;
use crate::logic::{eval_gate_lanes, WideLogicSim};
use crate::patterns::{PatternBlock, PatternSource};

/// Superblock widths the event engine is monomorphized over.
///
/// Adding a width means extending this list *and* the `with_block_words!`
/// dispatch macro below — the two are the single source of truth every
/// entry point shares.
pub const SUPPORTED_BLOCK_WORDS: [usize; 5] = [1, 2, 4, 8, 16];

/// Monomorphizes `$body` over the supported superblock widths: `$W`
/// becomes a `const usize` bound to the runtime value `$w`.  The one copy
/// of the width dispatch, shared by the serial drivers here and the
/// sharded workers in `parallel.rs`.
///
/// Callers must have validated `$w` via [`SimOptions::validate`] first.
macro_rules! with_block_words {
    ($w:expr, $W:ident => $body:expr) => {
        match $w {
            1 => {
                const $W: usize = 1;
                $body
            }
            2 => {
                const $W: usize = 2;
                $body
            }
            4 => {
                const $W: usize = 4;
                $body
            }
            8 => {
                const $W: usize = 8;
                $body
            }
            16 => {
                const $W: usize = 16;
                $body
            }
            _ => unreachable!("SimOptions::validate admits only SUPPORTED_BLOCK_WORDS"),
        }
    };
}
pub(crate) use with_block_words;

/// Which PPSFP inner loop to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimEngineKind {
    /// The reference engine: one `u64` block, dense per-fault cone walk.
    Dense,
    /// Event-driven sparse propagation over `W`-word superblocks.
    Event,
}

impl std::fmt::Display for SimEngineKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimEngineKind::Dense => write!(f, "dense"),
            SimEngineKind::Event => write!(f, "event"),
        }
    }
}

impl std::str::FromStr for SimEngineKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "dense" => Ok(SimEngineKind::Dense),
            "event" => Ok(SimEngineKind::Event),
            other => Err(format!("unknown engine `{other}` (expected dense or event)")),
        }
    }
}

/// Configuration of the PPSFP inner loop: engine kind and superblock width.
///
/// The default is the event-driven engine at `W = 4` (256 patterns per
/// pass) — bit-identical to [`SimOptions::dense`] everywhere, faster on
/// every workload circuit (see `BENCH_sim.json`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimOptions {
    /// Inner-loop engine.
    pub engine: SimEngineKind,
    /// Words per superblock (`64 * block_words` patterns per pass).
    /// Must be one of [`SUPPORTED_BLOCK_WORDS`]; the dense engine is
    /// pinned at 1.
    pub block_words: usize,
}

impl SimOptions {
    /// The reference dense engine (single-word blocks).
    pub fn dense() -> Self {
        SimOptions {
            engine: SimEngineKind::Dense,
            block_words: 1,
        }
    }

    /// The event-driven engine at the given superblock width.
    pub fn event(block_words: usize) -> Self {
        SimOptions {
            engine: SimEngineKind::Event,
            block_words,
        }
    }

    /// Checks the option combination.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message when `block_words` is not a
    /// supported width, or when a width other than 1 is requested for the
    /// dense engine (which is inherently single-word).
    pub fn validate(&self) -> Result<(), String> {
        if !SUPPORTED_BLOCK_WORDS.contains(&self.block_words) {
            return Err(format!(
                "block_words must be one of {SUPPORTED_BLOCK_WORDS:?}, got {}",
                self.block_words
            ));
        }
        if self.engine == SimEngineKind::Dense && self.block_words != 1 {
            return Err("the dense engine is single-word; use --engine event for block_words > 1"
                .to_string());
        }
        Ok(())
    }

    fn assert_valid(&self) {
        if let Err(e) = self.validate() {
            panic!("invalid SimOptions: {e}");
        }
    }
}

impl Default for SimOptions {
    fn default() -> Self {
        SimOptions::event(4)
    }
}

/// Machine-independent work counters of one PPSFP run.
///
/// These are the metrics `BENCH_sim.json` reports: wall-clock numbers
/// depend on the host, but gate evaluations per detected fault do not, so
/// the perf trajectory stays comparable across machines.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SimStats {
    /// `(fault, block)` propagation attempts (after good simulation).
    pub fault_blocks: u64,
    /// Attempts where the fault was not excited anywhere in the block
    /// (root value equals the fault-free value; zero propagation work).
    pub unexcited: u64,
    /// Gate evaluations during fault propagation (excluding the root
    /// injection): the dense engine pays one per cone node per excited
    /// block, the event engine one per *scheduled* node.
    pub node_evals: u64,
    /// Excited attempts whose effect died before reaching any primary
    /// output (the frontier drained without touching a PO).
    pub frontier_deaths: u64,
    /// Attempts that detected the fault in at least one pattern.
    pub detected_blocks: u64,
}

impl SimStats {
    /// Accumulates another run's counters into this one.
    pub fn merge(&mut self, other: &SimStats) {
        self.fault_blocks += other.fault_blocks;
        self.unexcited += other.unexcited;
        self.node_evals += other.node_evals;
        self.frontier_deaths += other.frontier_deaths;
        self.detected_blocks += other.detected_blocks;
    }

    /// Excited `(fault, block)` attempts (fault effect present at the root).
    pub fn excited(&self) -> u64 {
        self.fault_blocks - self.unexcited
    }

    /// Fraction of excited attempts whose effect died before any primary
    /// output — the die-out rate the event engine exploits (0 when nothing
    /// was excited).
    pub fn frontier_dieout_rate(&self) -> f64 {
        if self.excited() == 0 {
            return 0.0;
        }
        self.frontier_deaths as f64 / self.excited() as f64
    }
}

/// Per-fault work profile of an [`EventSimulator`], collected on demand
/// (see [`EventSimulator::enable_eval_profile`]).  This is what the 2D
/// tiled engine's batch classifier feeds on, and what `bench_sim` uses to
/// *derive* the dense engine's eval count on circuits too large to run
/// the dense engine outright.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultEvalProfile {
    /// Scheduled gate evaluations per fault (root injection excluded),
    /// summed over all profiled passes.
    pub evals: Vec<u64>,
    /// Excited 64-pattern blocks per fault, *clipped at the detecting
    /// block of each pass*: a lane counts iff it holds valid patterns,
    /// the fault is excited there, and no earlier lane of the same pass
    /// already detected the fault.  With `drop = true` callers this is
    /// exactly the number of blocks the dense engine would have paid a
    /// cone walk for, which makes `Σ excited_blocks[f] × (cone(f) − 1)`
    /// the dense engine's `node_evals` without ever running it.
    pub excited_blocks: Vec<u64>,
}

/// One superblock of up to `64 * W` bit-parallel patterns: `W` consecutive
/// [`PatternBlock`]s transposed into `[u64; W]` lanes, one lane array per
/// primary input.  Bit `j` of lane `k` is pattern `64 * k + j` relative to
/// the superblock start.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SuperBlock<const W: usize> {
    /// One `[u64; W]` per primary input.
    pub words: Vec<[u64; W]>,
    /// Number of valid patterns (`1..=64 * W`); valid patterns are a
    /// prefix, so lane `k` is fully valid iff `len >= 64 * (k + 1)`.
    pub len: u32,
}

impl<const W: usize> SuperBlock<W> {
    /// An empty superblock shell for `num_inputs` inputs (`len == 0`),
    /// meant to be reused as scratch across
    /// [`SuperBlock::refill_draw`] / [`SuperBlock::refill_from_blocks`]
    /// calls so streaming loops perform no per-superblock allocation.
    pub fn empty(num_inputs: usize) -> Self {
        SuperBlock {
            words: vec![[0u64; W]; num_inputs],
            len: 0,
        }
    }

    /// Draws up to `limit` patterns (at most `64 * W`) from `source` as
    /// `W` consecutive blocks, preserving the source's sequential stream —
    /// the same patterns a dense caller would draw block by block.
    /// `limit == 0` yields an empty superblock (nothing is drawn).
    pub fn draw(source: &mut impl PatternSource, limit: u64) -> Self {
        let mut sb = SuperBlock::empty(source.num_inputs());
        sb.refill_draw(source, limit);
        sb
    }

    /// In-place [`SuperBlock::draw`]: refills this superblock from
    /// `source`, reusing the lane allocation.  Lanes beyond the drawn
    /// length are zeroed, so a partial refill leaves no stale patterns.
    ///
    /// A source returning a short block (the trait permits fewer than the
    /// requested patterns) closes the superblock at that block: valid
    /// patterns must form a prefix of the lane array for the mask and the
    /// pattern-index math to hold, so no further lanes are drawn.
    ///
    /// # Panics
    ///
    /// Panics if the shell was built for a different input count.
    pub fn refill_draw(&mut self, source: &mut impl PatternSource, limit: u64) {
        assert_eq!(
            self.words.len(),
            source.num_inputs(),
            "superblock shell matches the source's input count"
        );
        self.len = 0;
        let mut remaining = limit;
        for k in 0..W {
            if remaining == 0 {
                for lanes in self.words.iter_mut() {
                    lanes[k] = 0;
                }
                continue;
            }
            let block = source.next_block(remaining.min(64) as u32);
            for (lanes, &w) in self.words.iter_mut().zip(&block.words) {
                lanes[k] = w;
            }
            self.len += block.len;
            remaining -= u64::from(block.len);
            if block.len < 64 {
                // Short block: close the superblock so valid patterns
                // stay a prefix (later lanes are zeroed above).
                remaining = 0;
            }
        }
    }

    /// Transposes up to `W` already-drawn consecutive blocks into a
    /// superblock (the sharded workers' path: blocks arrive broadcast in
    /// chunks).  All blocks but the last must be full.
    ///
    /// # Panics
    ///
    /// Panics if `blocks` is empty or holds more than `W` blocks.
    pub fn from_blocks(blocks: &[PatternBlock]) -> Self {
        assert!(!blocks.is_empty(), "at least one block per superblock");
        let mut sb = SuperBlock::empty(blocks[0].words.len());
        sb.refill_from_blocks(blocks);
        sb
    }

    /// In-place [`SuperBlock::from_blocks`], reusing the lane allocation;
    /// lanes beyond `blocks.len()` are zeroed.
    ///
    /// # Panics
    ///
    /// Panics if `blocks` is empty, holds more than `W` blocks, does not
    /// match the shell's input count, or holds a short block anywhere but
    /// last — valid patterns must form a prefix of the lane array (group
    /// with [`superblock_split`] to respect short blocks).
    pub fn refill_from_blocks(&mut self, blocks: &[PatternBlock]) {
        assert!(
            !blocks.is_empty() && blocks.len() <= W,
            "1..={W} blocks per superblock"
        );
        assert_eq!(
            self.words.len(),
            blocks[0].words.len(),
            "superblock shell matches the blocks' input count"
        );
        self.len = 0;
        for k in 0..W {
            match blocks.get(k) {
                Some(block) => {
                    assert!(
                        k + 1 == blocks.len() || block.len == 64,
                        "only the final block of a superblock may be partial"
                    );
                    for (lanes, &w) in self.words.iter_mut().zip(&block.words) {
                        lanes[k] = w;
                    }
                    self.len += block.len;
                }
                None => {
                    for lanes in self.words.iter_mut() {
                        lanes[k] = 0;
                    }
                }
            }
        }
    }

    /// Lane masks with the `len` low bits set across the lane array.
    pub fn mask(&self) -> [u64; W] {
        let mut m = [0u64; W];
        let mut left = self.len;
        for lane in m.iter_mut() {
            if left == 0 {
                break;
            }
            let take = left.min(64);
            *lane = if take >= 64 { u64::MAX } else { (1u64 << take) - 1 };
            left -= take;
        }
        m
    }
}

/// The value a fault forces at its effect root, lane-widened: `stuck`
/// itself for stem faults, the gate re-evaluated with the faulty pin for
/// pin faults.  The one copy of the injection semantics, shared by the
/// dense (`W = 1`) and event engines so a change cannot break their
/// bit-identity contract.
#[inline]
pub(crate) fn inject_root_lanes<const W: usize>(
    circuit: &Circuit,
    fault: Fault,
    stuck: [u64; W],
    good: impl Fn(NodeId) -> [u64; W],
) -> [u64; W] {
    match fault.site {
        FaultSite::Output(_) => stuck,
        FaultSite::InputPin { gate, pin } => {
            let node = circuit.node(gate);
            let lanes = node
                .fanin()
                .iter()
                .enumerate()
                .map(|(p, f)| if p == pin { stuck } else { good(*f) });
            eval_gate_lanes(node.kind(), lanes)
        }
    }
}

/// Number of consecutive blocks (at most `max_words`, at least 1) forming
/// the next superblock of a block stream: grouping extends only across
/// full 64-pattern blocks and closes at the first short one, mirroring
/// [`SuperBlock::refill_draw`] so chunked (sharded) and drawn (serial)
/// streams group identically and valid patterns always form a prefix.
///
/// # Panics
///
/// Panics if `blocks` is empty or `max_words` is zero.
pub fn superblock_split(blocks: &[PatternBlock], max_words: usize) -> usize {
    assert!(!blocks.is_empty() && max_words > 0);
    let mut take = 1;
    while take < max_words && take < blocks.len() && blocks[take - 1].len == 64 {
        take += 1;
    }
    take
}

/// Position of the lowest set bit across the lane array (pattern index
/// within the superblock), or `None` if all lanes are zero.
pub fn first_set_bit<const W: usize>(lanes: &[u64; W]) -> Option<u32> {
    lanes
        .iter()
        .enumerate()
        .find(|(_, &lane)| lane != 0)
        .map(|(k, lane)| k as u32 * 64 + lane.trailing_zeros())
}

/// Total set bits across the lane array (detections in the superblock).
pub fn count_set_bits<const W: usize>(lanes: &[u64; W]) -> u32 {
    lanes.iter().map(|lane| lane.count_ones()).sum()
}

/// Sentinel for "no node" in the intrusive ready chains.
const NIL: u32 = u32::MAX;

#[inline]
fn and_mask<const W: usize>(mut lanes: [u64; W], mask: &[u64; W]) -> [u64; W] {
    for (l, m) in lanes.iter_mut().zip(mask) {
        *l &= m;
    }
    lanes
}

#[inline]
fn or_diff<const W: usize>(acc: &mut [u64; W], a: &[u64; W], b: &[u64; W]) {
    for ((acc, x), y) in acc.iter_mut().zip(a).zip(b) {
        *acc |= x ^ y;
    }
}

/// Event-driven PPSFP fault simulator over `W`-word superblocks.
///
/// Unlike [`crate::FaultSimulator`], no per-fault cones are stored at all: the
/// reachable region is discovered on the fly by the event queue, and the
/// circuit's CSR fanout lists bound propagation exactly as tightly as an
/// explicit cone would — minus every node the fault effect never reaches.
///
/// # Example
///
/// ```
/// use wrt_circuit::parse_bench;
/// use wrt_fault::FaultList;
/// use wrt_sim::{EventSimulator, FaultWorklist, SuperBlock, WeightedPatterns, PatternSource};
///
/// # fn main() -> Result<(), wrt_circuit::ParseBenchError> {
/// let c = parse_bench("INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = OR(a, b)\n")?;
/// let faults = FaultList::checkpoints(&c);
/// let mut sim = EventSimulator::<4>::new(&c, &faults);
/// let mut src = WeightedPatterns::equiprobable(2, 3);
/// let sb = SuperBlock::<4>::draw(&mut src, 256);
/// let mut worklist = FaultWorklist::full(faults.len());
/// let mut detections = 0;
/// sim.detect_superblock_worklist(&sb.words, sb.mask(), &mut worklist, false, |_, _| {
///     detections += 1;
/// });
/// assert!(detections > 0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct EventSimulator<'c, const W: usize> {
    circuit: &'c Circuit,
    faults: Vec<Fault>,
    good: WideLogicSim<'c, W>,
    /// Scratch: faulty lanes per node, valid when `touched == epoch`.
    faulty: Vec<[u64; W]>,
    touched: Vec<u32>,
    /// Ready-set membership stamp (invariant 2 in the module docs).
    queued: Vec<u32>,
    epoch: u32,
    /// Level-indexed ready chains, intrusively linked: `bucket_head[l]`
    /// is the most recently scheduled node at level `l` (`NIL` when the
    /// level is empty) and `bucket_next[n]` links node `n` to the next
    /// ready node of its level.  Two flat O(depth)/O(nodes) arrays
    /// replace one heap-allocated `Vec` per level; within-level order is
    /// irrelevant because every fanin of a level-`l` node sits strictly
    /// below `l`.
    bucket_head: Box<[u32]>,
    bucket_next: Box<[u32]>,
    /// Min-heap of levels whose bucket is non-empty, so the drain loop
    /// hops directly between occupied levels instead of probing every
    /// level up to the deepest scheduled node (on deep circuits the empty
    /// probes would rival the real evaluations).
    active_levels: std::collections::BinaryHeap<std::cmp::Reverse<u32>>,
    /// Flat copy of the per-node levels (one indirection instead of two
    /// on the scheduling hot path).
    level: Box<[u32]>,
    stats: SimStats,
    /// Per-fault counters, allocated only when profiling is enabled so
    /// the hot path pays one branch otherwise.
    profile: Option<FaultEvalProfile>,
}

impl<'c, const W: usize> EventSimulator<'c, W> {
    /// Builds a simulator for `circuit` and `faults`.
    pub fn new(circuit: &'c Circuit, faults: &FaultList) -> Self {
        let n = circuit.num_nodes();
        EventSimulator {
            circuit,
            faults: faults.iter().map(|(_, f)| f).collect(),
            good: WideLogicSim::new(circuit),
            faulty: vec![[0; W]; n],
            touched: vec![0; n],
            queued: vec![0; n],
            epoch: 0,
            bucket_head: vec![NIL; circuit.levels().depth() as usize + 1].into_boxed_slice(),
            bucket_next: vec![NIL; n].into_boxed_slice(),
            active_levels: std::collections::BinaryHeap::new(),
            level: circuit.ids().map(|id| circuit.levels().level(id)).collect(),
            stats: SimStats::default(),
            profile: None,
        }
    }

    /// Number of faults under simulation.
    pub fn num_faults(&self) -> usize {
        self.faults.len()
    }

    /// Work counters accumulated since construction (or the last
    /// [`EventSimulator::reset_stats`]).
    pub fn stats(&self) -> SimStats {
        self.stats
    }

    /// Clears the accumulated work counters.
    pub fn reset_stats(&mut self) {
        self.stats = SimStats::default();
    }

    /// The shared fault-free simulator, holding the good values of the
    /// most recent superblock.  The tiled engine's dense batch passes
    /// read per-block good values from here instead of re-simulating.
    pub fn good_sim(&self) -> &WideLogicSim<'c, W> {
        &self.good
    }

    /// Starts (or restarts) per-fault profiling; counters begin at zero.
    pub fn enable_eval_profile(&mut self) {
        self.profile = Some(FaultEvalProfile {
            evals: vec![0; self.faults.len()],
            excited_blocks: vec![0; self.faults.len()],
        });
    }

    /// Takes the profile accumulated since
    /// [`EventSimulator::enable_eval_profile`], disabling profiling.
    pub fn take_eval_profile(&mut self) -> Option<FaultEvalProfile> {
        self.profile.take()
    }

    /// Simulates one superblock fault-free, then visits exactly the faults
    /// in `worklist`, invoking `on_detect(fault_index, detection_lanes)`
    /// for every fault the superblock detects.  With `drop = true`,
    /// detected faults are swap-removed from the worklist.
    ///
    /// The contract mirrors [`crate::FaultSimulator::detect_block_worklist`] with
    /// `u64` widened to `[u64; W]`; detection lanes are bit-identical to
    /// `W` consecutive dense blocks.
    pub fn detect_superblock_worklist(
        &mut self,
        pi_words: &[[u64; W]],
        mask: [u64; W],
        worklist: &mut FaultWorklist,
        drop: bool,
        on_detect: impl FnMut(usize, [u64; W]),
    ) {
        self.good.run(pi_words);
        worklist.visit(drop, [0; W], |i| self.detect_fault(i, &mask), on_detect);
    }

    /// The one copy of the ready-set bookkeeping (invariants 1–2 in the
    /// module docs): stamps `s` as queued for `epoch`, registers its level
    /// in the occupied-level heap on the bucket's empty→non-empty
    /// transition, and enqueues it.  `above` is the scheduler's level —
    /// scheduling is strictly upward, which is what makes the level-order
    /// drain evaluate every node after all of its touched fanins.
    #[inline]
    fn schedule(&mut self, s: NodeId, epoch: u32, above: u32) {
        let si = s.index();
        if self.queued[si] != epoch {
            self.queued[si] = epoch;
            let lvl = self.level[si];
            debug_assert!(lvl > above, "scheduling is strictly upward");
            let head = &mut self.bucket_head[lvl as usize];
            if *head == NIL {
                self.active_levels.push(std::cmp::Reverse(lvl));
            }
            self.bucket_next[si] = *head;
            *head = si as u32;
        }
    }

    /// Detection lanes for fault index `i` against the current fault-free
    /// state (callers must have run a superblock first).
    fn detect_fault(&mut self, i: usize, mask: &[u64; W]) -> [u64; W] {
        let fault = self.faults[i];
        self.stats.fault_blocks += 1;
        let evals_before = self.stats.node_evals;
        let stuck = if fault.stuck_value {
            [u64::MAX; W]
        } else {
            [0; W]
        };
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            // Extremely rare wrap: reset both stamp arrays.
            self.touched.fill(0);
            self.queued.fill(0);
            self.epoch = 1;
        }
        let epoch = self.epoch;
        let root = fault.site.effect_root();

        // Inject at the root.
        let root_value =
            inject_root_lanes(self.circuit, fault, stuck, |f| self.good.value(f));
        let good_root = self.good.value(root);
        if root_value == good_root {
            // Fault not excited anywhere in this superblock.
            self.stats.unexcited += 1;
            return [0; W];
        }
        self.faulty[root.index()] = root_value;
        self.touched[root.index()] = epoch;

        let mut diff = [0u64; W];
        let mut output_touched = false;
        if self.circuit.is_output(root) {
            or_diff(&mut diff, &root_value, &good_root);
            output_touched = true;
        }

        // Seed the ready set with the root's fanouts, then drain occupied
        // buckets in increasing level order until the frontier dies out.
        // `circuit` is the copied `&'c` reference, so fanout slices do not
        // hold a borrow of `self` across the `schedule` calls.
        let circuit = self.circuit;
        let root_level = self.level[root.index()];
        for &s in circuit.fanout(root) {
            self.schedule(s, epoch, root_level);
        }
        while let Some(std::cmp::Reverse(lvl)) = self.active_levels.pop() {
            // Detach the whole chain; draining schedules only into strictly
            // higher levels, so the links we walk are never rewritten.
            let mut ni = std::mem::replace(&mut self.bucket_head[lvl as usize], NIL);
            while ni != NIL {
                let n = NodeId::from_index(ni as usize);
                let node = circuit.node(n);
                debug_assert!(node.kind() != GateKind::Input);
                self.stats.node_evals += 1;
                let w = eval_gate_lanes(
                    node.kind(),
                    node.fanin().iter().map(|f| {
                        if self.touched[f.index()] == epoch {
                            self.faulty[f.index()]
                        } else {
                            self.good.value(*f)
                        }
                    }),
                );
                let good_n = self.good.value(n);
                if w != good_n {
                    self.faulty[ni as usize] = w;
                    self.touched[ni as usize] = epoch;
                    if circuit.is_output(n) {
                        or_diff(&mut diff, &w, &good_n);
                        output_touched = true;
                    }
                    for &s in circuit.fanout(n) {
                        self.schedule(s, epoch, lvl);
                    }
                }
                ni = self.bucket_next[ni as usize];
            }
        }

        if !output_touched {
            self.stats.frontier_deaths += 1;
        }
        let masked = and_mask(diff, mask);
        if masked != [0; W] {
            self.stats.detected_blocks += 1;
        }
        if let Some(profile) = self.profile.as_mut() {
            profile.evals[i] += self.stats.node_evals - evals_before;
            // Excited valid lanes up to (and including) the detecting
            // lane — the blocks a drop-mode dense engine would walk.
            let last = first_set_bit(&masked).map_or(W, |b| b as usize / 64 + 1);
            profile.excited_blocks[i] += mask
                .iter()
                .zip(root_value.iter().zip(&good_root))
                .take(last)
                .filter(|&(&m, (r, g))| m != 0 && r != g)
                .count() as u64;
        }
        masked
    }
}

/// [`crate::fault_coverage`] with a configurable inner loop: runs the
/// selected engine ([`SimOptions`]) and additionally returns its
/// machine-independent work counters.
///
/// Results are bit-identical across every engine/width combination — the
/// property test in this module proves it — so callers pick options purely
/// on speed.
///
/// # Panics
///
/// Panics if `opts` fails [`SimOptions::validate`].
pub fn fault_coverage_opts(
    circuit: &Circuit,
    faults: &FaultList,
    source: impl PatternSource,
    num_patterns: u64,
    drop: bool,
    opts: SimOptions,
) -> (CoverageResult, SimStats) {
    opts.assert_valid();
    match opts.engine {
        SimEngineKind::Dense => crate::fault_sim::fault_coverage_stats(
            circuit,
            faults,
            source,
            num_patterns,
            drop,
        ),
        SimEngineKind::Event => with_block_words!(opts.block_words, W => {
            event_coverage::<W>(circuit, faults, source, num_patterns, drop)
        }),
    }
}

/// [`crate::detection_counts`] with a configurable inner loop; see
/// [`fault_coverage_opts`].
///
/// # Panics
///
/// Panics if `opts` fails [`SimOptions::validate`].
pub fn detection_counts_opts(
    circuit: &Circuit,
    faults: &FaultList,
    source: impl PatternSource,
    num_patterns: u64,
    opts: SimOptions,
) -> (Vec<u64>, SimStats) {
    opts.assert_valid();
    match opts.engine {
        SimEngineKind::Dense => {
            crate::fault_sim::detection_counts_stats(circuit, faults, source, num_patterns)
        }
        SimEngineKind::Event => with_block_words!(opts.block_words, W => {
            event_counts::<W>(circuit, faults, source, num_patterns)
        }),
    }
}

fn event_coverage<const W: usize>(
    circuit: &Circuit,
    faults: &FaultList,
    mut source: impl PatternSource,
    num_patterns: u64,
    drop: bool,
) -> (CoverageResult, SimStats) {
    let mut sim = EventSimulator::<W>::new(circuit, faults);
    let mut detected_at: Vec<Option<u64>> = vec![None; faults.len()];
    let mut worklist = FaultWorklist::full(faults.len());
    let mut sb = SuperBlock::<W>::empty(source.num_inputs());
    let mut done = 0u64;
    while done < num_patterns && !(drop && worklist.is_empty()) {
        sb.refill_draw(&mut source, num_patterns - done);
        sim.detect_superblock_worklist(&sb.words, sb.mask(), &mut worklist, drop, |i, w| {
            if detected_at[i].is_none() {
                let bit = first_set_bit(&w).expect("on_detect implies a set bit");
                detected_at[i] = Some(done + u64::from(bit));
            }
        });
        done += u64::from(sb.len);
    }
    (CoverageResult::new(detected_at, num_patterns), sim.stats())
}

fn event_counts<const W: usize>(
    circuit: &Circuit,
    faults: &FaultList,
    mut source: impl PatternSource,
    num_patterns: u64,
) -> (Vec<u64>, SimStats) {
    let mut sim = EventSimulator::<W>::new(circuit, faults);
    let mut counts = vec![0u64; faults.len()];
    let mut worklist = FaultWorklist::full(faults.len());
    let mut sb = SuperBlock::<W>::empty(source.num_inputs());
    let mut done = 0u64;
    while done < num_patterns {
        sb.refill_draw(&mut source, num_patterns - done);
        sim.detect_superblock_worklist(&sb.words, sb.mask(), &mut worklist, false, |i, w| {
            counts[i] += u64::from(count_set_bits(&w));
        });
        done += u64::from(sb.len);
    }
    (counts, sim.stats())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault_sim::{detection_counts, fault_coverage};
    use crate::patterns::{ExhaustivePatterns, WeightedPatterns};
    use wrt_circuit::parse_bench;

    fn adder() -> Circuit {
        parse_bench(
            "INPUT(a)\nINPUT(b)\nINPUT(cin)\nOUTPUT(s)\nOUTPUT(cout)\n\
             x1 = XOR(a, b)\ns = XOR(x1, cin)\na1 = AND(a, b)\na2 = AND(x1, cin)\n\
             cout = OR(a1, a2)\n",
        )
        .unwrap()
    }

    #[test]
    fn superblock_draw_matches_block_stream() {
        let mut a = WeightedPatterns::equiprobable(3, 9);
        let mut b = WeightedPatterns::equiprobable(3, 9);
        let sb = SuperBlock::<4>::draw(&mut a, 300);
        assert_eq!(sb.len, 256);
        for k in 0..4 {
            let block = b.next_block(64);
            for (pi, lanes) in sb.words.iter().enumerate() {
                assert_eq!(lanes[k], block.words[pi], "lane {k} input {pi}");
            }
        }
    }

    #[test]
    fn superblock_mask_is_prefix() {
        let mut src = ExhaustivePatterns::new(2);
        let sb = SuperBlock::<4>::draw(&mut src, 130);
        assert_eq!(sb.len, 130);
        assert_eq!(sb.mask(), [u64::MAX, u64::MAX, 0b11, 0]);
        let full = SuperBlock::<2>::draw(&mut src, 1_000_000);
        assert_eq!(full.len, 128);
        assert_eq!(full.mask(), [u64::MAX, u64::MAX]);
    }

    #[test]
    fn superblock_refill_zeroes_stale_lanes() {
        let mut src = ExhaustivePatterns::new(2);
        let mut sb = SuperBlock::<4>::empty(2);
        sb.refill_draw(&mut src, 256);
        assert_eq!(sb.len, 256);
        // Partial refill: lanes 1..4 must not keep the previous patterns.
        sb.refill_draw(&mut src, 40);
        assert_eq!(sb.len, 40);
        for lanes in &sb.words {
            assert_eq!(&lanes[1..], &[0, 0, 0], "stale lanes zeroed");
        }
        assert_eq!(sb.mask(), [(1u64 << 40) - 1, 0, 0, 0]);
        // Zero-limit refill yields an empty superblock, drawing nothing.
        let mut a = ExhaustivePatterns::new(2);
        let mut b = ExhaustivePatterns::new(2);
        let mut empty = SuperBlock::<2>::empty(2);
        empty.refill_draw(&mut a, 0);
        assert_eq!(empty.len, 0);
        assert_eq!(empty.mask(), [0, 0]);
        assert_eq!(a.next_block(64), b.next_block(64), "stream untouched");
        // from_blocks shells refill the same way.
        let blocks = [b.next_block(64), b.next_block(32)];
        let mut sb2 = SuperBlock::<4>::empty(2);
        sb2.refill_from_blocks(&blocks);
        assert_eq!(sb2.len, 96);
        assert_eq!(sb2, SuperBlock::<4>::from_blocks(&blocks));
    }

    /// A conforming-but-awkward source: never more than 24 patterns per
    /// block, even when more are requested (the trait allows it).
    #[derive(Clone)]
    struct ShortBlocks(WeightedPatterns);

    impl PatternSource for ShortBlocks {
        fn next_block(&mut self, limit: u32) -> crate::patterns::PatternBlock {
            self.0.next_block(limit.min(24))
        }

        fn num_inputs(&self) -> usize {
            self.0.num_inputs()
        }
    }

    #[test]
    fn short_block_sources_stay_bit_identical() {
        let c = adder();
        let faults = wrt_fault::FaultList::full(&c);
        let short = || ShortBlocks(WeightedPatterns::equiprobable(3, 3));
        let dense = fault_coverage(&c, &faults, short(), 200, true);
        for words in SUPPORTED_BLOCK_WORDS {
            let (event, _) =
                fault_coverage_opts(&c, &faults, short(), 200, true, SimOptions::event(words));
            assert_eq!(dense.detected_at(), event.detected_at(), "W = {words}");
            let (sharded, _) = crate::parallel::fault_coverage_sharded_opts(
                &c,
                &faults,
                short(),
                200,
                true,
                3,
                SimOptions::event(words),
            );
            assert_eq!(dense.detected_at(), sharded.detected_at(), "sharded W = {words}");
        }
        // A short mid-stream block closes the superblock early.
        let mut sb = SuperBlock::<4>::empty(3);
        sb.refill_draw(&mut short(), 1000);
        assert_eq!(sb.len, 24, "superblock ends at the short block");
        assert_eq!(sb.mask(), [(1u64 << 24) - 1, 0, 0, 0]);
    }

    #[test]
    fn superblock_split_groups_full_blocks_only() {
        let mut src = WeightedPatterns::equiprobable(2, 1);
        let blocks: Vec<_> = (0..5).map(|_| src.next_block(64)).collect();
        assert_eq!(superblock_split(&blocks, 4), 4);
        assert_eq!(superblock_split(&blocks[4..], 4), 1);
        let mut short_tail = vec![src.next_block(64), src.next_block(64)];
        short_tail.push(src.next_block(10));
        short_tail.push(src.next_block(64));
        // Grouping may include the short block as its last member...
        assert_eq!(superblock_split(&short_tail, 4), 3);
        // ...but never extends past it.
        assert_eq!(superblock_split(&short_tail[2..], 4), 1);
    }

    #[test]
    fn lane_bit_helpers() {
        let lanes = [0u64, 0b1000, u64::MAX];
        assert_eq!(first_set_bit(&lanes), Some(64 + 3));
        assert_eq!(count_set_bits(&lanes), 1 + 64);
        assert_eq!(first_set_bit(&[0u64; 2]), None);
        assert_eq!(first_set_bit(&[1u64]), Some(0));
    }

    #[test]
    fn event_matches_dense_on_full_adder_exhaustive() {
        let c = adder();
        let faults = wrt_fault::FaultList::full(&c);
        let dense = fault_coverage(&c, &faults, ExhaustivePatterns::new(3), 8, false);
        for drop in [false, true] {
            for words in SUPPORTED_BLOCK_WORDS {
                let (event, stats) = fault_coverage_opts(
                    &c,
                    &faults,
                    ExhaustivePatterns::new(3),
                    8,
                    drop,
                    SimOptions::event(words),
                );
                assert_eq!(dense.detected_at(), event.detected_at(), "W = {words}");
                assert!(stats.fault_blocks > 0);
            }
        }
    }

    #[test]
    fn event_counts_match_dense() {
        let c = adder();
        let faults = wrt_fault::FaultList::full(&c);
        let dense = detection_counts(&c, &faults, WeightedPatterns::equiprobable(3, 5), 999);
        for words in SUPPORTED_BLOCK_WORDS {
            let (event, _) = detection_counts_opts(
                &c,
                &faults,
                WeightedPatterns::equiprobable(3, 5),
                999,
                SimOptions::event(words),
            );
            assert_eq!(dense, event, "W = {words}");
        }
    }

    #[test]
    fn dense_opts_reports_stats_and_matches_plain_entry() {
        let c = adder();
        let faults = wrt_fault::FaultList::full(&c);
        let plain = fault_coverage(&c, &faults, WeightedPatterns::equiprobable(3, 2), 256, true);
        let (dense, stats) = fault_coverage_opts(
            &c,
            &faults,
            WeightedPatterns::equiprobable(3, 2),
            256,
            true,
            SimOptions::dense(),
        );
        assert_eq!(plain.detected_at(), dense.detected_at());
        assert!(stats.node_evals > 0);
        assert!(stats.fault_blocks >= stats.unexcited);
    }

    #[test]
    fn event_stats_count_frontier_deaths() {
        // y = AND(m, 0-ish): fault on `a` propagates into m but the AND
        // with b = 0 kills it before the output in every pattern.
        let c = parse_bench(
            "INPUT(a)\nINPUT(b)\nOUTPUT(y)\nm = NOT(a)\ny = AND(m, b)\n",
        )
        .unwrap();
        let a = c.node_id("a").unwrap();
        let faults =
            wrt_fault::FaultList::from_faults(vec![wrt_fault::Fault::output(a, true)]);
        let mut sim = EventSimulator::<1>::new(&c, &faults);
        // Patterns with a = 0 (fault excited) and b = 0 (effect masked at y).
        let mut worklist = FaultWorklist::full(1);
        sim.detect_superblock_worklist(
            &[[0u64], [0u64]],
            [u64::MAX],
            &mut worklist,
            false,
            |_, _| panic!("must not detect"),
        );
        let stats = sim.stats();
        assert_eq!(stats.fault_blocks, 1);
        assert_eq!(stats.unexcited, 0);
        assert_eq!(stats.frontier_deaths, 1);
        // NOT evaluated + AND evaluated (then dies): exactly 2 evals, not
        // the full cone of `a` every time thereafter.
        assert_eq!(stats.node_evals, 2);
        assert_eq!(stats.frontier_dieout_rate(), 1.0);
    }

    #[test]
    fn event_never_evaluates_more_than_dense() {
        let c = adder();
        let faults = wrt_fault::FaultList::full(&c);
        let (_, dense) = fault_coverage_opts(
            &c,
            &faults,
            WeightedPatterns::equiprobable(3, 77),
            512,
            true,
            SimOptions::dense(),
        );
        let (_, event) = fault_coverage_opts(
            &c,
            &faults,
            WeightedPatterns::equiprobable(3, 77),
            512,
            true,
            SimOptions::event(1),
        );
        // Same blocks, same drops at W = 1: the event engine evaluates a
        // subset of each cone.
        assert!(
            event.node_evals <= dense.node_evals,
            "event {} vs dense {}",
            event.node_evals,
            dense.node_evals
        );
    }

    #[test]
    fn options_validation() {
        assert!(SimOptions::default().validate().is_ok());
        assert!(SimOptions::dense().validate().is_ok());
        for w in SUPPORTED_BLOCK_WORDS {
            assert!(SimOptions::event(w).validate().is_ok());
        }
        assert!(SimOptions::event(3).validate().is_err());
        assert!(SimOptions::event(32).validate().is_err());
        assert!(SimOptions {
            engine: SimEngineKind::Dense,
            block_words: 4
        }
        .validate()
        .is_err());
        assert_eq!("event".parse::<SimEngineKind>().unwrap(), SimEngineKind::Event);
        assert_eq!("dense".parse::<SimEngineKind>().unwrap(), SimEngineKind::Dense);
        assert!("psychic".parse::<SimEngineKind>().is_err());
        assert_eq!(format!("{}", SimEngineKind::Event), "event");
    }

    #[test]
    #[should_panic(expected = "invalid SimOptions")]
    fn invalid_width_panics_in_driver() {
        let c = adder();
        let faults = wrt_fault::FaultList::primary_inputs(&c);
        let _ = fault_coverage_opts(
            &c,
            &faults,
            WeightedPatterns::equiprobable(3, 1),
            64,
            true,
            SimOptions::event(5),
        );
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::fault_sim::{detection_counts, fault_coverage};
    use crate::parallel::{detection_counts_sharded_opts, fault_coverage_sharded_opts};
    use crate::patterns::WeightedPatterns;
    use crate::test_support::arb_circuit;
    use proptest::prelude::*;
    use wrt_fault::FaultList;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// The event-driven engine is bit-identical to the dense one —
        /// `detected_at` and `counts` — across random circuits, weights,
        /// superblock widths 1/2/4/8/16, pattern counts, drop modes, and
        /// shard counts (1 = serial, plus oversharding).
        #[test]
        fn event_is_bit_identical_to_dense(
            circuit in arb_circuit(),
            weights in proptest::collection::vec(0.05f64..0.95, 4),
            width_and_threads in (0usize..5, 1usize..7),
            seed in 0u64..1_000,
            patterns in 1u64..700,
            drop in any::<bool>(),
        ) {
            let (width_idx, threads) = width_and_threads;
            let faults = FaultList::full(&circuit);
            let words = SUPPORTED_BLOCK_WORDS[width_idx];
            let opts = SimOptions::event(words);

            let dense = fault_coverage(
                &circuit, &faults,
                WeightedPatterns::new(weights.clone(), seed),
                patterns, drop,
            );
            let (event, _) = fault_coverage_opts(
                &circuit, &faults,
                WeightedPatterns::new(weights.clone(), seed),
                patterns, drop, opts,
            );
            prop_assert_eq!(dense.detected_at(), event.detected_at());

            let (event_sharded, _) = fault_coverage_sharded_opts(
                &circuit, &faults,
                WeightedPatterns::new(weights.clone(), seed),
                patterns, drop, threads, opts,
            );
            prop_assert_eq!(dense.detected_at(), event_sharded.detected_at());

            let counts = detection_counts(
                &circuit, &faults,
                WeightedPatterns::new(weights.clone(), seed),
                patterns,
            );
            let (counts_event, _) = detection_counts_opts(
                &circuit, &faults,
                WeightedPatterns::new(weights.clone(), seed),
                patterns, opts,
            );
            prop_assert_eq!(&counts, &counts_event);

            let (counts_sharded, _) = detection_counts_sharded_opts(
                &circuit, &faults,
                WeightedPatterns::new(weights, seed),
                patterns, threads, opts,
            );
            prop_assert_eq!(&counts, &counts_sharded);
        }

        /// Oversharding (more shards than faults) stays identical for the
        /// event engine, including drop mode.
        #[test]
        fn event_oversharding_is_identical(
            circuit in arb_circuit(),
            seed in 0u64..100,
            width_idx in 0usize..5,
        ) {
            let faults = FaultList::primary_inputs(&circuit);
            let opts = SimOptions::event(SUPPORTED_BLOCK_WORDS[width_idx]);
            let dense = fault_coverage(
                &circuit, &faults,
                WeightedPatterns::equiprobable(4, seed),
                300, true,
            );
            let (sharded, _) = fault_coverage_sharded_opts(
                &circuit, &faults,
                WeightedPatterns::equiprobable(4, seed),
                300, true, faults.len() * 3 + 7, opts,
            );
            prop_assert_eq!(dense.detected_at(), sharded.detected_at());
        }
    }
}

//! Parallel-pattern single-fault-propagation (PPSFP) fault simulation.
//!
//! For every 64-pattern block the fault-free circuit is simulated once;
//! each fault is then injected individually and only its output cone is
//! re-evaluated.  A fault is detected in pattern *j* when some primary
//! output differs from the fault-free value in bit *j*.

use wrt_circuit::{transitive_fanout, Circuit, GateKind, NodeId};
use wrt_fault::{Fault, FaultList};

use crate::coverage::CoverageResult;
use crate::event::SimStats;
use crate::logic::{eval_gate_words, LogicSim};
use crate::patterns::PatternSource;

/// PPSFP fault simulator over a fixed circuit and fault list.
///
/// The simulator owns per-fault cone data (computed once) and scratch
/// buffers, so blocks can be streamed through it cheaply.
///
/// # Example
///
/// ```
/// use wrt_circuit::parse_bench;
/// use wrt_fault::FaultList;
/// use wrt_sim::{FaultSimulator, WeightedPatterns, PatternSource};
///
/// # fn main() -> Result<(), wrt_circuit::ParseBenchError> {
/// let c = parse_bench("INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = OR(a, b)\n")?;
/// let faults = FaultList::checkpoints(&c);
/// let mut sim = FaultSimulator::new(&c, &faults);
/// let mut src = WeightedPatterns::equiprobable(2, 3);
/// let block = src.next_block(64);
/// let detected = sim.detect_block(&block.words, block.mask());
/// assert_eq!(detected.len(), faults.len());
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct FaultSimulator<'c> {
    circuit: &'c Circuit,
    faults: Vec<Fault>,
    /// Per fault: index into `cones` (shared across faults with the same
    /// effect root — both polarities, stem + pin faults — which keeps the
    /// memory footprint proportional to distinct roots, not fault count).
    cone_slot: Vec<usize>,
    /// Per slot: the effect root's output cone (topologically sorted) and
    /// the primary outputs inside it.
    cones: Vec<(Vec<NodeId>, Vec<NodeId>)>,
    good: LogicSim<'c>,
    /// Scratch: faulty value per node, valid when `touched == epoch`.
    faulty: Vec<u64>,
    touched: Vec<u32>,
    epoch: u32,
    /// Scratch worklist reused by [`FaultSimulator::detect_block_filtered`]
    /// so repeated filtered calls do not rebuild an index vector per block.
    filtered_scratch: FaultWorklist,
    stats: SimStats,
}

impl<'c> FaultSimulator<'c> {
    /// Builds a simulator for `circuit` and `faults`.
    pub fn new(circuit: &'c Circuit, faults: &FaultList) -> Self {
        let mut cone_slot = Vec::with_capacity(faults.len());
        let mut cache: std::collections::HashMap<NodeId, usize> =
            std::collections::HashMap::new();
        let mut cones: Vec<(Vec<NodeId>, Vec<NodeId>)> = Vec::new();
        for (_, f) in faults.iter() {
            let root = f.site.effect_root();
            let slot = *cache.entry(root).or_insert_with(|| {
                let cone = transitive_fanout(circuit, &[root]);
                let outs = cone
                    .iter()
                    .copied()
                    .filter(|&n| circuit.is_output(n))
                    .collect();
                cones.push((cone, outs));
                cones.len() - 1
            });
            cone_slot.push(slot);
        }
        FaultSimulator {
            circuit,
            faults: faults.iter().map(|(_, f)| f).collect(),
            cone_slot,
            cones,
            good: LogicSim::new(circuit),
            faulty: vec![0; circuit.num_nodes()],
            touched: vec![0; circuit.num_nodes()],
            epoch: 0,
            filtered_scratch: FaultWorklist { indices: Vec::new() },
            stats: SimStats::default(),
        }
    }

    /// Number of faults under simulation.
    pub fn num_faults(&self) -> usize {
        self.faults.len()
    }

    /// Number of distinct `(cone, cone_outputs)` entries actually stored:
    /// faults sharing an effect root (both polarities, stem + pin faults
    /// of one gate) share a single slot, so this is the number of distinct
    /// effect roots — usually far below [`FaultSimulator::num_faults`].
    pub fn num_distinct_cones(&self) -> usize {
        self.cones.len()
    }

    /// Work counters accumulated since construction (or the last
    /// [`FaultSimulator::reset_stats`]).  `node_evals` counts one
    /// evaluation per cone node per excited `(fault, block)` pair — the
    /// dense cost the event engine's sparse frontier undercuts.
    pub fn stats(&self) -> SimStats {
        self.stats
    }

    /// Clears the accumulated work counters.
    pub fn reset_stats(&mut self) {
        self.stats = SimStats::default();
    }

    /// The fault-free simulator state from the most recent block.
    pub fn good_sim(&self) -> &LogicSim<'c> {
        &self.good
    }

    /// Simulates one block fault-free and returns, for every fault, the
    /// word of patterns that detect it (bit *j* set = pattern *j* detects).
    ///
    /// Allocates the result vector; streaming callers should prefer
    /// [`FaultSimulator::detect_block_into`] with a reused buffer.
    pub fn detect_block(&mut self, pi_words: &[u64], mask: u64) -> Vec<u64> {
        let mut out = Vec::new();
        self.detect_block_into(pi_words, mask, &mut out);
        out
    }

    /// Like [`FaultSimulator::detect_block`] but writes the per-fault
    /// detection words into a caller-provided buffer (cleared and refilled),
    /// so block-streaming loops perform no per-block allocation.
    pub fn detect_block_into(&mut self, pi_words: &[u64], mask: u64, out: &mut Vec<u64>) {
        self.good.run(pi_words);
        out.clear();
        out.reserve(self.faults.len());
        for i in 0..self.faults.len() {
            let w = self.detect_fault_in_block(i, mask);
            out.push(w);
        }
    }

    /// Like [`FaultSimulator::detect_block`] but only for the faults whose
    /// index satisfies `active`; inactive faults report 0.
    ///
    /// Implemented over an internal scratch [`FaultWorklist`] (refilled,
    /// never reallocated), so only the active faults are visited and the
    /// call is allocation-free apart from the returned vector — use
    /// [`FaultSimulator::detect_block_filtered_into`] to avoid that too.
    /// Streaming callers that drop faults across many blocks should keep a
    /// persistent worklist and call
    /// [`FaultSimulator::detect_block_worklist`] instead.
    pub fn detect_block_filtered(
        &mut self,
        pi_words: &[u64],
        mask: u64,
        active: &[bool],
    ) -> Vec<u64> {
        let mut out = Vec::new();
        self.detect_block_filtered_into(pi_words, mask, active, &mut out);
        out
    }

    /// [`FaultSimulator::detect_block_filtered`] into a caller-provided
    /// buffer: no allocation at all once the buffer and the internal
    /// scratch worklist have grown to fault-list size.
    pub fn detect_block_filtered_into(
        &mut self,
        pi_words: &[u64],
        mask: u64,
        active: &[bool],
        out: &mut Vec<u64>,
    ) {
        assert_eq!(active.len(), self.faults.len(), "one flag per fault");
        let mut worklist = std::mem::take(&mut self.filtered_scratch);
        worklist.refill_from_active(active);
        out.clear();
        out.resize(self.faults.len(), 0);
        self.detect_block_worklist(pi_words, mask, &mut worklist, false, |i, w| out[i] = w);
        self.filtered_scratch = worklist;
    }

    /// Simulates one block fault-free, then visits exactly the faults in
    /// `worklist`, invoking `on_detect(fault_index, detection_word)` for
    /// every fault the block detects.
    ///
    /// With `drop = true`, detected faults are swap-removed from the
    /// worklist so later blocks never touch them again — the compacted
    /// replacement for scanning an `active: Vec<bool>` of full fault-list
    /// length on every block.
    pub fn detect_block_worklist(
        &mut self,
        pi_words: &[u64],
        mask: u64,
        worklist: &mut FaultWorklist,
        drop: bool,
        on_detect: impl FnMut(usize, u64),
    ) {
        self.good.run(pi_words);
        worklist.visit(drop, 0, |i| self.detect_fault_in_block(i, mask), on_detect);
    }

    /// Detection word for fault index `i` against the current fault-free
    /// state (callers must have run a block first).
    fn detect_fault_in_block(&mut self, i: usize, mask: u64) -> u64 {
        let fault = self.faults[i];
        self.stats.fault_blocks += 1;
        let stuck = if fault.stuck_value { u64::MAX } else { 0 };
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            // Extremely rare wrap: reset stamps.
            self.touched.fill(0);
            self.epoch = 1;
        }
        let epoch = self.epoch;
        let root = fault.site.effect_root();

        // Inject at the root (the same shared helper the event engine
        // uses, at W = 1).
        let root_value =
            crate::event::inject_root_lanes::<1>(self.circuit, fault, [stuck], |f| {
                [self.good.value(f)]
            })[0];
        if root_value == self.good.value(root) {
            // Fault not excited anywhere in this block.
            self.stats.unexcited += 1;
            return 0;
        }
        self.faulty[root.index()] = root_value;
        self.touched[root.index()] = epoch;

        // Propagate through the cone (already topologically sorted).
        let (cone, cone_outputs) = &self.cones[self.cone_slot[i]];
        self.stats.node_evals += (cone.len() - 1) as u64;
        for &n in cone {
            if n == root {
                continue;
            }
            let node = self.circuit.node(n);
            debug_assert!(node.kind() != GateKind::Input || self.circuit.is_output(n));
            let words = node.fanin().iter().map(|f| {
                if self.touched[f.index()] == epoch {
                    self.faulty[f.index()]
                } else {
                    self.good.value(*f)
                }
            });
            let w = eval_gate_words(node.kind(), words);
            if w != self.good.value(n) {
                self.faulty[n.index()] = w;
                self.touched[n.index()] = epoch;
            }
        }

        // Compare primary outputs inside the cone.
        let mut diff = 0u64;
        let mut output_touched = false;
        for &o in cone_outputs {
            if self.touched[o.index()] == epoch {
                diff |= self.faulty[o.index()] ^ self.good.value(o);
                output_touched = true;
            }
        }
        if !output_touched {
            self.stats.frontier_deaths += 1;
        }
        let masked = diff & mask;
        if masked != 0 {
            self.stats.detected_blocks += 1;
        }
        masked
    }
}

/// A compacted worklist of still-active fault indices.
///
/// The worklist holds the *indices* (into a [`FaultSimulator`]'s fault
/// list) of faults that still need simulation.  Dropping a fault is an
/// `O(1)` swap-remove, so a block late in a dropping run costs time
/// proportional to the number of *undetected* faults — not, as with an
/// `active: Vec<bool>` scan, to the full fault-list length.
///
/// Iteration order changes as faults are dropped; detection results do
/// not depend on it (every remaining fault is visited each block).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultWorklist {
    indices: Vec<u32>,
}

impl FaultWorklist {
    /// A worklist containing every fault index in `0..num_faults`.
    pub fn full(num_faults: usize) -> Self {
        FaultWorklist {
            indices: (0..u32::try_from(num_faults).expect("fault count fits in u32")).collect(),
        }
    }

    /// A worklist of exactly the given fault indices (the 2D tiled
    /// engine's per-tile event-axis membership).
    pub fn from_indices(indices: &[u32]) -> Self {
        FaultWorklist {
            indices: indices.to_vec(),
        }
    }

    /// A worklist of the indices whose `active` flag is set.
    pub fn from_active(active: &[bool]) -> Self {
        let mut list = FaultWorklist {
            indices: Vec::new(),
        };
        list.refill_from_active(active);
        list
    }

    /// Clears the worklist and refills it with the indices whose `active`
    /// flag is set, reusing the existing allocation.
    pub fn refill_from_active(&mut self, active: &[bool]) {
        self.indices.clear();
        self.indices.extend(
            active
                .iter()
                .enumerate()
                .filter(|&(_, &a)| a)
                .map(|(i, _)| i as u32),
        );
    }

    /// Number of faults still active.
    pub fn len(&self) -> usize {
        self.indices.len()
    }

    /// Whether every fault has been dropped.
    pub fn is_empty(&self) -> bool {
        self.indices.is_empty()
    }

    /// The remaining fault indices, in current (unspecified) order.
    pub fn as_slice(&self) -> &[u32] {
        &self.indices
    }

    /// Visits every remaining fault: `detect(i)` produces the detection
    /// value for fault `i`; when it differs from `zero`, `on_detect(i, w)`
    /// fires and, with `drop = true`, the fault is swap-removed so the
    /// swapped-in fault is visited next.
    ///
    /// This is the one copy of the dropping iteration protocol, shared by
    /// the dense and event engines (the detection value is a `u64` block
    /// word or a `[u64; W]` superblock lane array respectively).
    pub(crate) fn visit<D: Copy + PartialEq>(
        &mut self,
        drop: bool,
        zero: D,
        mut detect: impl FnMut(usize) -> D,
        mut on_detect: impl FnMut(usize, D),
    ) {
        let mut k = 0;
        while k < self.indices.len() {
            let i = self.indices[k] as usize;
            let w = detect(i);
            if w != zero {
                on_detect(i, w);
                if drop {
                    self.indices.swap_remove(k);
                    continue; // the swapped-in fault is visited next
                }
            }
            k += 1;
        }
    }
}

/// Runs `num_patterns` patterns from `source` against `faults` and records
/// first-detection indices and the coverage curve.
///
/// With `drop = true` a fault is no longer simulated after its first
/// detection (standard fault dropping; much faster, same coverage result).
/// Dropped faults are swap-removed from a compacted [`FaultWorklist`], so
/// late blocks only pay for the still-undetected remainder; once the
/// worklist drains the remaining blocks are skipped entirely.
pub fn fault_coverage(
    circuit: &Circuit,
    faults: &FaultList,
    source: impl PatternSource,
    num_patterns: u64,
    drop: bool,
) -> CoverageResult {
    fault_coverage_stats(circuit, faults, source, num_patterns, drop).0
}

/// [`fault_coverage`] plus the dense engine's work counters (the stats
/// side of [`crate::fault_coverage_opts`] with [`crate::SimOptions::dense`]).
pub(crate) fn fault_coverage_stats(
    circuit: &Circuit,
    faults: &FaultList,
    mut source: impl PatternSource,
    num_patterns: u64,
    drop: bool,
) -> (CoverageResult, SimStats) {
    let mut sim = FaultSimulator::new(circuit, faults);
    let mut detected_at: Vec<Option<u64>> = vec![None; faults.len()];
    let mut worklist = FaultWorklist::full(faults.len());
    let mut done = 0u64;
    while done < num_patterns && !(drop && worklist.is_empty()) {
        let limit = (num_patterns - done).min(64) as u32;
        let block = source.next_block(limit);
        let mask = block.mask();
        sim.detect_block_worklist(&block.words, mask, &mut worklist, drop, |i, w| {
            if detected_at[i].is_none() {
                detected_at[i] = Some(done + u64::from(w.trailing_zeros()));
            }
        });
        done += u64::from(block.len);
    }
    (CoverageResult::new(detected_at, num_patterns), sim.stats())
}

/// Counts, for every fault, how many of `num_patterns` patterns detect it
/// (no dropping).  `counts[f] / num_patterns` is the Monte-Carlo estimate
/// of the detection probability `p_f(X)` for the source's distribution `X`.
pub fn detection_counts(
    circuit: &Circuit,
    faults: &FaultList,
    source: impl PatternSource,
    num_patterns: u64,
) -> Vec<u64> {
    detection_counts_stats(circuit, faults, source, num_patterns).0
}

/// [`detection_counts`] plus the dense engine's work counters.
///
/// Runs over a persistent full [`FaultWorklist`] instead of the allocating
/// [`FaultSimulator::detect_block`], so the streaming loop performs no
/// per-block allocation.
pub(crate) fn detection_counts_stats(
    circuit: &Circuit,
    faults: &FaultList,
    mut source: impl PatternSource,
    num_patterns: u64,
) -> (Vec<u64>, SimStats) {
    let mut sim = FaultSimulator::new(circuit, faults);
    let mut counts = vec![0u64; faults.len()];
    let mut worklist = FaultWorklist::full(faults.len());
    let mut done = 0u64;
    while done < num_patterns {
        let limit = (num_patterns - done).min(64) as u32;
        let block = source.next_block(limit);
        sim.detect_block_worklist(&block.words, block.mask(), &mut worklist, false, |i, w| {
            counts[i] += u64::from(w.count_ones());
        });
        done += u64::from(block.len);
    }
    (counts, sim.stats())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::patterns::{ExhaustivePatterns, WeightedPatterns};
    use wrt_circuit::parse_bench;
    use wrt_fault::Fault;

    fn and_circuit() -> Circuit {
        parse_bench("INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = AND(a, b)\n").unwrap()
    }

    #[test]
    fn and_gate_detection_conditions() {
        let c = and_circuit();
        let y = c.node_id("y").unwrap();
        let a = c.node_id("a").unwrap();
        let faults = FaultList::from_faults(vec![
            Fault::output(y, false), // detected by (1,1)
            Fault::output(y, true),  // detected by any pattern with y=0
            Fault::output(a, true),  // detected by (0,1)
        ]);
        let mut sim = FaultSimulator::new(&c, &faults);
        // patterns j: j0=(0,0), j1=(1,0), j2=(0,1), j3=(1,1)
        let words = vec![0b1010, 0b1100];
        let det = sim.detect_block(&words, 0b1111);
        assert_eq!(det[0], 0b1000); // only (1,1)
        assert_eq!(det[1], 0b0111); // all with y=0
        assert_eq!(det[2], 0b0100); // only (0,1)
    }

    #[test]
    fn pin_fault_vs_stem_fault_at_fanout() {
        // a fans out to AND and OR; a-pin s-a-1 at the AND only affects y.
        let c = parse_bench(
            "INPUT(a)\nINPUT(b)\nOUTPUT(y)\nOUTPUT(z)\ny = AND(a, b)\nz = OR(a, b)\n",
        )
        .unwrap();
        let yid = c.node_id("y").unwrap();
        let a = c.node_id("a").unwrap();
        let faults = FaultList::from_faults(vec![
            Fault::input_pin(yid, 0, true),
            Fault::output(a, true),
        ]);
        let mut sim = FaultSimulator::new(&c, &faults);
        // pattern (a,b) = (0,0): pin fault makes y=0 still (b=0) -> undetected;
        // stem fault makes z=1 -> detected at z.
        let det = sim.detect_block(&[0b0, 0b0], 0b1);
        assert_eq!(det[0], 0);
        assert_eq!(det[1], 1);
        // pattern (0,1): pin fault y: faulty AND(1,1)=1 vs good 0 -> detected.
        let det = sim.detect_block(&[0b0, 0b1], 0b1);
        assert_eq!(det[0], 1);
    }

    #[test]
    fn exhaustive_coverage_of_irredundant_circuit_is_complete() {
        let c = parse_bench(
            "INPUT(a)\nINPUT(b)\nINPUT(cin)\nOUTPUT(s)\nOUTPUT(cout)\n\
             x1 = XOR(a, b)\ns = XOR(x1, cin)\na1 = AND(a, b)\na2 = AND(x1, cin)\n\
             cout = OR(a1, a2)\n",
        )
        .unwrap();
        let faults = FaultList::full(&c);
        let res = fault_coverage(&c, &faults, ExhaustivePatterns::new(3), 8, false);
        assert_eq!(res.num_detected(), faults.len(), "full adder is irredundant");
        assert_eq!(res.coverage(), 1.0);
    }

    #[test]
    fn redundant_fault_never_detected() {
        // y = OR(a, NOT(a)) == 1 always; y s-a-1 is redundant.
        let c = parse_bench("INPUT(a)\nOUTPUT(y)\nn = NOT(a)\ny = OR(a, n)\n").unwrap();
        let y = c.node_id("y").unwrap();
        let faults = FaultList::from_faults(vec![Fault::output(y, true), Fault::output(y, false)]);
        let res = fault_coverage(&c, &faults, ExhaustivePatterns::new(1), 2, false);
        assert_eq!(res.detected_at()[0], None); // s-a-1 redundant
        assert!(res.detected_at()[1].is_some()); // s-a-0 trivially detected
    }

    #[test]
    fn dropping_matches_non_dropping_coverage() {
        let c = parse_bench(
            "INPUT(a)\nINPUT(b)\nINPUT(c)\nOUTPUT(y)\nm = NAND(a, b)\nn = NOR(b, c)\ny = XOR(m, n)\n",
        )
        .unwrap();
        let faults = FaultList::full(&c);
        let r1 = fault_coverage(&c, &faults, WeightedPatterns::equiprobable(3, 5), 256, true);
        let r2 = fault_coverage(&c, &faults, WeightedPatterns::equiprobable(3, 5), 256, false);
        assert_eq!(r1.detected_at(), r2.detected_at());
    }

    #[test]
    fn detection_counts_match_exact_probabilities() {
        // y = AND(a,b): p(y s-a-0 detected) = P(a=1)P(b=1) = 1/4 under
        // equiprobable patterns.
        let c = and_circuit();
        let y = c.node_id("y").unwrap();
        let faults = FaultList::from_faults(vec![Fault::output(y, false)]);
        let n = 64 * 400;
        let counts = detection_counts(
            &c,
            &faults,
            WeightedPatterns::equiprobable(2, 17),
            n,
        );
        let p = counts[0] as f64 / n as f64;
        assert!((p - 0.25).abs() < 0.02, "p = {p}");
    }

    #[test]
    fn faults_sharing_an_effect_root_share_one_cone_slot() {
        // High-fanin gate: 8 inputs all feeding one AND.  The full fault
        // list has 2 stem + 16 pin faults on the AND — 18 faults whose
        // effect root is the gate — plus 16 PI stem faults.  Only 9
        // distinct roots exist, so only 9 cones may be stored.
        let mut src = String::from("OUTPUT(y)\n");
        let mut args = Vec::new();
        for i in 0..8 {
            src.push_str(&format!("INPUT(x{i})\n"));
            args.push(format!("x{i}"));
        }
        src.push_str(&format!("y = AND({})\n", args.join(", ")));
        let c = parse_bench(&src).unwrap();
        let faults = FaultList::full(&c);
        assert_eq!(faults.len(), 8 * 2 + 2 + 8 * 2);
        let sim = FaultSimulator::new(&c, &faults);
        assert_eq!(sim.num_distinct_cones(), 9, "one cone per effect root");
        assert!(sim.num_distinct_cones() < sim.num_faults());
    }

    #[test]
    fn filtered_and_into_variants_match_detect_block() {
        let c = and_circuit();
        let faults = FaultList::full(&c);
        let mut sim = FaultSimulator::new(&c, &faults);
        let words = vec![0b1010, 0b1100];
        let all = sim.detect_block(&words, 0b1111);
        let mut buf = Vec::new();
        sim.detect_block_into(&words, 0b1111, &mut buf);
        assert_eq!(all, buf);
        // Filtered with every-other fault active; repeated calls reuse the
        // internal scratch worklist.
        let active: Vec<bool> = (0..faults.len()).map(|i| i % 2 == 0).collect();
        for _ in 0..3 {
            let filtered = sim.detect_block_filtered(&words, 0b1111, &active);
            for (i, (&f, &a)) in filtered.iter().zip(&all).enumerate() {
                assert_eq!(f, if active[i] { a } else { 0 }, "fault {i}");
            }
        }
        let mut out = Vec::new();
        sim.detect_block_filtered_into(&words, 0b1111, &active, &mut out);
        assert_eq!(out, sim.detect_block_filtered(&words, 0b1111, &active));
    }

    #[test]
    fn dense_stats_track_cone_work() {
        let c = and_circuit();
        let y = c.node_id("y").unwrap();
        let faults = FaultList::from_faults(vec![Fault::output(y, false)]);
        let mut sim = FaultSimulator::new(&c, &faults);
        // (1,1) in one pattern: excited and detected.
        let _ = sim.detect_block(&[0b1, 0b1], 0b1);
        let stats = sim.stats();
        assert_eq!(stats.fault_blocks, 1);
        assert_eq!(stats.unexcited, 0);
        assert_eq!(stats.detected_blocks, 1);
        sim.reset_stats();
        assert_eq!(sim.stats(), crate::SimStats::default());
    }

    #[test]
    fn unexcited_fault_short_circuit() {
        // Fault value equals good value everywhere in block -> no detection
        // and the early-exit path is taken (covered implicitly).
        let c = and_circuit();
        let a = c.node_id("a").unwrap();
        let faults = FaultList::from_faults(vec![Fault::output(a, true)]);
        let mut sim = FaultSimulator::new(&c, &faults);
        // a already 1 in every pattern: fault unexcited.
        let det = sim.detect_block(&[u64::MAX, 0], u64::MAX);
        assert_eq!(det[0], 0);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::logic::simulate_pattern;
    use crate::patterns::ExhaustivePatterns;
    use crate::test_support::arb_circuit;
    use proptest::prelude::*;
    use wrt_fault::FaultSite;

    /// Scalar reference fault simulation: inject the fault into a copy of
    /// the evaluation and compare outputs, bit by bit.
    fn scalar_detects(circuit: &Circuit, fault: Fault, assignment: &[bool]) -> bool {
        let good = simulate_pattern(circuit, assignment);
        // Faulty evaluation.
        let mut values = vec![false; circuit.num_nodes()];
        let mut buf = Vec::new();
        for (id, node) in circuit.iter() {
            let mut v = match node.kind() {
                GateKind::Input => assignment[circuit.input_position(id).expect("pi")],
                kind => {
                    buf.clear();
                    for (pin, f) in node.fanin().iter().enumerate() {
                        let mut fv = values[f.index()];
                        if let FaultSite::InputPin { gate, pin: fp } = fault.site {
                            if gate == id && fp == pin {
                                fv = fault.stuck_value;
                            }
                        }
                        buf.push(fv);
                    }
                    kind.eval(&buf)
                }
            };
            if fault.site == FaultSite::Output(id) {
                v = fault.stuck_value;
            }
            values[id.index()] = v;
        }
        let faulty: Vec<bool> = circuit
            .outputs()
            .iter()
            .map(|&o| values[o.index()])
            .collect();
        good != faulty
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn ppsfp_agrees_with_scalar_reference(circuit in arb_circuit()) {
            let faults = FaultList::full(&circuit);
            let mut sim = FaultSimulator::new(&circuit, &faults);
            let mut src = ExhaustivePatterns::new(4);
            let block = src.next_block(16);
            let det = sim.detect_block(&block.words, block.mask());
            for (i, (_, fault)) in faults.iter().enumerate() {
                for j in 0..16u32 {
                    let assignment = block.pattern(j);
                    let expected = scalar_detects(&circuit, fault, &assignment);
                    let got = (det[i] >> j) & 1 == 1;
                    prop_assert_eq!(
                        got, expected,
                        "fault {} pattern {:?}", fault.describe(&circuit), assignment
                    );
                }
            }
        }
    }
}

//! Bit-parallel (64 patterns per word) fault-free logic simulation.

use wrt_circuit::{Circuit, GateKind, NodeId};

/// Evaluates one gate over bit-parallel fanin words.
///
/// Each bit position is an independent pattern; the returned word holds the
/// gate's output for all 64 patterns at once.
///
/// # Panics
///
/// Panics if `kind` is [`GateKind::Input`] (inputs have no gate function).
pub fn eval_gate_words(kind: GateKind, fanin: impl IntoIterator<Item = u64>) -> u64 {
    // The single-word instantiation of `eval_gate_lanes`, so the gate
    // truth tables live in exactly one place.
    eval_gate_lanes::<1>(kind, fanin.into_iter().map(|w| [w]))[0]
}

/// Lane-wise fold over `[u64; W]` words: `acc[k] = f(acc[k], w[k])` for
/// every fanin word.  The fixed-size inner loop is straight-line code the
/// autovectorizer turns into SIMD for `W > 1`.
#[inline]
fn fold_lanes<const W: usize>(
    mut acc: [u64; W],
    fanin: impl Iterator<Item = [u64; W]>,
    f: impl Fn(u64, u64) -> u64,
) -> [u64; W] {
    for w in fanin {
        for (a, b) in acc.iter_mut().zip(w) {
            *a = f(*a, b);
        }
    }
    acc
}

#[inline]
fn not_lanes<const W: usize>(mut w: [u64; W]) -> [u64; W] {
    for a in w.iter_mut() {
        *a = !*a;
    }
    w
}

/// Evaluates one gate over `W`-word superblock fanin lanes: the `[u64; W]`
/// generalization of [`eval_gate_words`], amortizing one gate dispatch over
/// `64 * W` patterns.  Bit `j` of lane `k` is pattern `64 * k + j`.
///
/// # Panics
///
/// Panics if `kind` is [`GateKind::Input`] (inputs have no gate function).
#[inline]
pub fn eval_gate_lanes<const W: usize>(
    kind: GateKind,
    fanin: impl IntoIterator<Item = [u64; W]>,
) -> [u64; W] {
    let mut it = fanin.into_iter();
    match kind {
        GateKind::Input => panic!("primary inputs have no gate function"),
        GateKind::Const0 => [0; W],
        GateKind::Const1 => [u64::MAX; W],
        GateKind::And => fold_lanes([u64::MAX; W], it, |a, b| a & b),
        GateKind::Nand => not_lanes(fold_lanes([u64::MAX; W], it, |a, b| a & b)),
        GateKind::Or => fold_lanes([0; W], it, |a, b| a | b),
        GateKind::Nor => not_lanes(fold_lanes([0; W], it, |a, b| a | b)),
        GateKind::Xor => fold_lanes([0; W], it, |a, b| a ^ b),
        GateKind::Xnor => not_lanes(fold_lanes([0; W], it, |a, b| a ^ b)),
        GateKind::Not => not_lanes(it.next().expect("NOT has one fanin")),
        GateKind::Buf => it.next().expect("BUF has one fanin"),
    }
}

/// Reusable `W`-word bit-parallel fault-free simulator: the superblock
/// generalization of [`LogicSim`], holding one `[u64; W]` per node so a
/// single forward pass covers `64 * W` patterns.
///
/// Like [`LogicSim`], no event scheduling is needed — node ids are
/// topologically sorted by construction, so one sweep over `0..n` suffices.
#[derive(Debug, Clone)]
pub struct WideLogicSim<'c, const W: usize> {
    circuit: &'c Circuit,
    values: Vec<[u64; W]>,
}

impl<'c, const W: usize> WideLogicSim<'c, W> {
    /// Creates a simulator for `circuit` with all values zero.
    pub fn new(circuit: &'c Circuit) -> Self {
        WideLogicSim {
            circuit,
            values: vec![[0; W]; circuit.num_nodes()],
        }
    }

    /// The circuit being simulated.
    pub fn circuit(&self) -> &'c Circuit {
        self.circuit
    }

    /// Simulates `64 * W` patterns: `pi_words[k]` holds the superblock
    /// lanes of primary input `k`.
    ///
    /// # Panics
    ///
    /// Panics if `pi_words.len() != circuit.num_inputs()`.
    pub fn run(&mut self, pi_words: &[[u64; W]]) {
        assert_eq!(
            pi_words.len(),
            self.circuit.num_inputs(),
            "one lane array per primary input"
        );
        for (id, node) in self.circuit.iter() {
            let w = match node.kind() {
                GateKind::Input => {
                    pi_words[self.circuit.input_position(id).expect("input")]
                }
                kind => eval_gate_lanes(
                    kind,
                    node.fanin().iter().map(|f| self.values[f.index()]),
                ),
            };
            self.values[id.index()] = w;
        }
    }

    /// The simulated lanes at a node (valid after [`WideLogicSim::run`]).
    pub fn value(&self, id: NodeId) -> [u64; W] {
        self.values[id.index()]
    }
}

/// Reusable bit-parallel fault-free simulator.
///
/// Holds one `u64` per circuit node; [`LogicSim::run`] performs a single
/// forward pass in topological order (no event scheduling needed because
/// node ids are topologically sorted by construction).
///
/// # Example
///
/// ```
/// use wrt_circuit::parse_bench;
/// use wrt_sim::LogicSim;
///
/// # fn main() -> Result<(), wrt_circuit::ParseBenchError> {
/// let c = parse_bench("INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = XOR(a, b)\n")?;
/// let mut sim = LogicSim::new(&c);
/// sim.run(&[0b01, 0b11]); // two patterns: (a,b) = (1,1), (0,1)
/// let y = c.node_id("y").expect("exists");
/// assert_eq!(sim.value(y) & 0b11, 0b10);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct LogicSim<'c> {
    circuit: &'c Circuit,
    values: Vec<u64>,
}

impl<'c> LogicSim<'c> {
    /// Creates a simulator for `circuit` with all values zero.
    pub fn new(circuit: &'c Circuit) -> Self {
        LogicSim {
            circuit,
            values: vec![0; circuit.num_nodes()],
        }
    }

    /// The circuit being simulated.
    pub fn circuit(&self) -> &'c Circuit {
        self.circuit
    }

    /// Simulates 64 patterns: `pi_words[k]` holds the values of primary
    /// input `k` (bit *j* = pattern *j*).
    ///
    /// # Panics
    ///
    /// Panics if `pi_words.len() != circuit.num_inputs()`.
    pub fn run(&mut self, pi_words: &[u64]) {
        assert_eq!(
            pi_words.len(),
            self.circuit.num_inputs(),
            "one word per primary input"
        );
        for (id, node) in self.circuit.iter() {
            let w = match node.kind() {
                GateKind::Input => {
                    pi_words[self.circuit.input_position(id).expect("input")]
                }
                kind => eval_gate_words(
                    kind,
                    node.fanin().iter().map(|f| self.values[f.index()]),
                ),
            };
            self.values[id.index()] = w;
        }
    }

    /// The simulated word at a node (valid after [`LogicSim::run`]).
    pub fn value(&self, id: NodeId) -> u64 {
        self.values[id.index()]
    }

    /// All node values, indexable by [`NodeId::index`].
    pub fn values(&self) -> &[u64] {
        &self.values
    }

    /// The primary-output words, in output order.
    pub fn output_words(&self) -> Vec<u64> {
        self.circuit
            .outputs()
            .iter()
            .map(|&o| self.values[o.index()])
            .collect()
    }
}

/// Scalar reference simulation of a single pattern.
///
/// Returns the primary-output values in output order.  This is the ground
/// truth the bit-parallel simulator is property-tested against.
///
/// # Panics
///
/// Panics if `assignment.len() != circuit.num_inputs()`.
pub fn simulate_pattern(circuit: &Circuit, assignment: &[bool]) -> Vec<bool> {
    assert_eq!(assignment.len(), circuit.num_inputs());
    let mut values = vec![false; circuit.num_nodes()];
    let mut fanin_buf = Vec::new();
    for (id, node) in circuit.iter() {
        let v = match node.kind() {
            GateKind::Input => assignment[circuit.input_position(id).expect("input")],
            kind => {
                fanin_buf.clear();
                fanin_buf.extend(node.fanin().iter().map(|f| values[f.index()]));
                kind.eval(&fanin_buf)
            }
        };
        values[id.index()] = v;
    }
    circuit
        .outputs()
        .iter()
        .map(|&o| values[o.index()])
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use wrt_circuit::parse_bench;

    #[test]
    fn parallel_matches_scalar_on_full_adder() {
        let c = parse_bench(
            "INPUT(a)\nINPUT(b)\nINPUT(cin)\nOUTPUT(s)\nOUTPUT(cout)\n\
             x1 = XOR(a, b)\ns = XOR(x1, cin)\na1 = AND(a, b)\na2 = AND(x1, cin)\n\
             cout = OR(a1, a2)\n",
        )
        .unwrap();
        let mut sim = LogicSim::new(&c);
        // Pack all 8 input combinations into bits 0..8.
        let mut words = vec![0u64; 3];
        for pat in 0..8u64 {
            for (i, word) in words.iter_mut().enumerate() {
                *word |= ((pat >> i) & 1) << pat;
            }
        }
        sim.run(&words);
        let outs = sim.output_words();
        for pat in 0..8usize {
            let assignment: Vec<bool> = (0..3).map(|i| (pat >> i) & 1 == 1).collect();
            let expected = simulate_pattern(&c, &assignment);
            for (o, &word) in outs.iter().enumerate() {
                assert_eq!(
                    (word >> pat) & 1 == 1,
                    expected[o],
                    "pattern {pat}, output {o}"
                );
            }
        }
    }

    #[test]
    fn constants_evaluate_correctly_in_words() {
        assert_eq!(eval_gate_words(GateKind::Const0, []), 0);
        assert_eq!(eval_gate_words(GateKind::Const1, []), u64::MAX);
        assert_eq!(eval_gate_lanes::<2>(GateKind::Const0, []), [0, 0]);
        assert_eq!(
            eval_gate_lanes::<2>(GateKind::Const1, []),
            [u64::MAX, u64::MAX]
        );
    }

    #[test]
    fn wide_sim_lanes_match_one_word_runs() {
        let c = parse_bench(
            "INPUT(a)\nINPUT(b)\nINPUT(cin)\nOUTPUT(s)\nOUTPUT(cout)\n\
             x1 = XOR(a, b)\ns = XOR(x1, cin)\na1 = AND(a, b)\na2 = AND(x1, cin)\n\
             cout = OR(a1, a2)\n",
        )
        .unwrap();
        // 4 lanes of distinct words per input.
        let lanes: Vec<[u64; 4]> = (0..3)
            .map(|i| [0x0123 << i, 0x4567 << i, !(0x89AB << i), 0xCDEF << i])
            .collect();
        let mut wide = WideLogicSim::<4>::new(&c);
        wide.run(&lanes);
        let mut narrow = LogicSim::new(&c);
        for k in 0..4 {
            let words: Vec<u64> = lanes.iter().map(|l| l[k]).collect();
            narrow.run(&words);
            for id in c.ids() {
                assert_eq!(wide.value(id)[k], narrow.value(id), "lane {k} node {id}");
            }
        }
    }

    #[test]
    fn gate_lanes_match_gate_words_per_lane() {
        let kinds = [
            GateKind::And,
            GateKind::Nand,
            GateKind::Or,
            GateKind::Nor,
            GateKind::Xor,
            GateKind::Xnor,
        ];
        let a = [0x00FF_00FF_00FF_00FFu64, 0xDEAD_BEEF_0BAD_F00D];
        let b = [0x0F0F_0F0F_0F0F_0F0Fu64, 0x1234_5678_9ABC_DEF0];
        for kind in kinds {
            let wide = eval_gate_lanes::<2>(kind, [a, b]);
            for k in 0..2 {
                assert_eq!(wide[k], eval_gate_words(kind, [a[k], b[k]]), "{kind:?}");
            }
        }
        assert_eq!(eval_gate_lanes::<2>(GateKind::Not, [a]), [!a[0], !a[1]]);
        assert_eq!(eval_gate_lanes::<2>(GateKind::Buf, [a]), a);
    }

    #[test]
    #[should_panic(expected = "one word per primary input")]
    fn run_rejects_wrong_width() {
        let c = parse_bench("INPUT(a)\nOUTPUT(y)\ny = NOT(a)\n").unwrap();
        LogicSim::new(&c).run(&[0, 0]);
    }

    #[test]
    fn values_reusable_across_runs() {
        let c = parse_bench("INPUT(a)\nOUTPUT(y)\ny = NOT(a)\n").unwrap();
        let y = c.node_id("y").unwrap();
        let mut sim = LogicSim::new(&c);
        sim.run(&[u64::MAX]);
        assert_eq!(sim.value(y), 0);
        sim.run(&[0]);
        assert_eq!(sim.value(y), u64::MAX);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use wrt_circuit::{CircuitBuilder, GateKind};

    /// Strategy: random DAG circuit with `n_in` inputs and `n_gates` gates.
    fn arb_circuit(n_in: usize, n_gates: usize) -> impl Strategy<Value = wrt_circuit::Circuit> {
        let kinds = prop::sample::select(vec![
            GateKind::And,
            GateKind::Nand,
            GateKind::Or,
            GateKind::Nor,
            GateKind::Xor,
            GateKind::Xnor,
            GateKind::Not,
            GateKind::Buf,
        ]);
        proptest::collection::vec((kinds, proptest::collection::vec(0usize..1000, 1..4)), n_gates)
            .prop_map(move |specs| {
                let mut b = CircuitBuilder::named("random");
                let mut ids = Vec::new();
                for i in 0..n_in {
                    ids.push(b.input(format!("i{i}")));
                }
                for (kind, picks) in specs {
                    let fanin: Vec<_> = match kind {
                        GateKind::Not | GateKind::Buf => {
                            vec![ids[picks[0] % ids.len()]]
                        }
                        _ => picks.iter().map(|&p| ids[p % ids.len()]).collect(),
                    };
                    let id = b.gate_auto(kind, &fanin).expect("valid fanin");
                    ids.push(id);
                }
                let last = *ids.last().expect("non-empty");
                b.mark_output(last);
                // A couple more outputs for observability.
                let mid = ids[ids.len() / 2];
                if mid != last {
                    b.mark_output(mid);
                }
                b.build().expect("structurally valid")
            })
    }

    proptest! {
        #[test]
        fn parallel_simulation_agrees_with_scalar(
            circuit in arb_circuit(5, 25),
            patterns in proptest::collection::vec(proptest::collection::vec(any::<bool>(), 5), 1..20)
        ) {
            let mut words = vec![0u64; 5];
            for (j, pat) in patterns.iter().enumerate() {
                for (i, &bit) in pat.iter().enumerate() {
                    words[i] |= u64::from(bit) << j;
                }
            }
            let mut sim = LogicSim::new(&circuit);
            sim.run(&words);
            let outs = sim.output_words();
            for (j, pat) in patterns.iter().enumerate() {
                let expected = simulate_pattern(&circuit, pat);
                for (o, &w) in outs.iter().enumerate() {
                    prop_assert_eq!((w >> j) & 1 == 1, expected[o]);
                }
            }
        }
    }
}

//! Budgeted, panic-isolated fault-simulation entry points.
//!
//! These are the run-to-completion variants of the sharded PPSFP engines:
//! they accept a [`Budget`], stream patterns through the sharded scaffold
//! (panic-isolated shard recovery included), and report everything
//! structurally — partial results on a tripped budget, a
//! [`ShardRecovery`] record instead of a panic when workers die.
//!
//! # Canonical eval units
//!
//! The eval axis of the budget is counted in *canonical* units: one eval
//! per circuit node per pattern of fault-free simulation.  That makes
//! `max_evals` a machine- and thread-count-independent measure of the
//! pattern stream, so an eval-budget interruption at the same value
//! yields the *bit-identical* partial result across runs, engines, and
//! thread counts: the budget resolves upfront to a deterministic pattern
//! clip `min(num_patterns, max_evals / num_nodes)`.  The real measured
//! work (which is far lower for the event engine) is still reported via
//! [`SimStats`].
//!
//! Wall-clock deadlines and cancellation trip at chunk boundaries, so
//! their partial results are well-formed prefixes of the pattern stream —
//! but *which* prefix depends on timing, and they are explicitly excluded
//! from the bit-identity claim.

use wrt_circuit::Circuit;
use wrt_fault::FaultList;
use wrt_robust::{Budget, Progress, RunOutcome};

use crate::coverage::CoverageResult;
use crate::event::{with_block_words, SimEngineKind, SimOptions, SimStats};
use crate::parallel::{
    counts_worker_dense, counts_worker_event, coverage_worker_dense, coverage_worker_event,
    recommended_threads, run_sharded, ShardRecovery, ShardedRun,
};
use crate::patterns::PatternSource;

/// A budgeted coverage run's payload: the (possibly partial) coverage,
/// the merged work counters, and the recovery record.
#[derive(Debug, Clone)]
pub struct RobustCoverage {
    /// Detection results over the patterns actually simulated.
    pub result: CoverageResult,
    /// Merged machine-independent work counters.
    pub stats: SimStats,
    /// What recovery, if any, the run needed.
    pub recovery: ShardRecovery,
}

/// A budgeted detection-counts run's payload.
#[derive(Debug, Clone)]
pub struct RobustCounts {
    /// Per-fault detection counts over the patterns actually simulated.
    pub counts: Vec<u64>,
    /// Patterns actually simulated (the denominator for frequencies).
    pub num_patterns: u64,
    /// Merged machine-independent work counters.
    pub stats: SimStats,
    /// What recovery, if any, the run needed.
    pub recovery: ShardRecovery,
}

/// Resolves the eval budget to a deterministic pattern clip (see the
/// module docs) and the canonical per-pattern eval rate.
pub(crate) fn eval_clip(circuit: &Circuit, num_patterns: u64, budget: &Budget) -> (u64, u64) {
    let evals_per_pattern = (circuit.num_nodes() as u64).max(1);
    let clip = budget
        .max_evals()
        .map_or(num_patterns, |max| (max / evals_per_pattern).min(num_patterns));
    (clip, evals_per_pattern)
}

/// Wraps a sharded run's raw outcome into a [`RunOutcome`]: a runtime
/// budget trip wins; otherwise an upfront eval clip reports
/// [`wrt_robust::BudgetExceeded::Evals`]; otherwise the run is complete.
pub(crate) fn wrap_outcome<T>(
    partial: T,
    streamed: u64,
    tripped: Option<wrt_robust::BudgetExceeded>,
    target: u64,
    requested: u64,
) -> RunOutcome<T> {
    let progress = Progress {
        done: streamed,
        total: Some(requested),
        unit: "patterns",
    };
    if let Some(reason) = tripped {
        return RunOutcome::Interrupted {
            partial,
            reason,
            progress,
        };
    }
    if target < requested {
        return RunOutcome::Interrupted {
            partial,
            reason: wrt_robust::BudgetExceeded::Evals,
            progress,
        };
    }
    RunOutcome::Complete(partial)
}

/// Budgeted, panic-isolated [`crate::fault_coverage_sharded`]: coverage
/// over as many patterns as the budget admits, with structured shard
/// recovery.  `threads = 0` resolves via [`recommended_threads`]; the run
/// always uses the sharded scaffold (one shard at `threads = 1`), whose
/// bit-identity to the serial engine is property-tested.
///
/// # Panics
///
/// Panics if `opts` fails [`SimOptions::validate`] (programmer error —
/// the CLI validates engine flags before reaching this point).
// One argument past the lint's threshold: the signature deliberately
// mirrors `fault_coverage_sharded_opts` plus the budget.
#[allow(clippy::too_many_arguments)]
pub fn fault_coverage_robust(
    circuit: &Circuit,
    faults: &FaultList,
    source: impl PatternSource + Clone,
    num_patterns: u64,
    drop: bool,
    threads: usize,
    opts: SimOptions,
    budget: &Budget,
) -> RunOutcome<RobustCoverage> {
    opts.validate().expect("invalid SimOptions");
    let (target, _) = eval_clip(circuit, num_patterns, budget);
    if faults.is_empty() {
        return wrap_outcome(
            RobustCoverage {
                result: CoverageResult::new(Vec::new(), target),
                stats: SimStats::default(),
                recovery: ShardRecovery::default(),
            },
            target,
            None,
            target,
            num_patterns,
        );
    }
    let threads = recommended_threads(threads, faults.len()).max(1);
    let mut detected_at: Vec<Option<u64>> = vec![None; faults.len()];
    let outcome = run_sharded(
        ShardedRun {
            circuit,
            faults,
            source,
            num_patterns: target,
            threads,
            budget: Some(budget),
            fallback_is_distinct: opts.engine == SimEngineKind::Event,
        },
        &mut detected_at,
        |sublist, rx| match opts.engine {
            SimEngineKind::Dense => coverage_worker_dense(circuit, sublist, rx, drop),
            SimEngineKind::Event => with_block_words!(opts.block_words, W => {
                coverage_worker_event::<W>(circuit, sublist, rx, drop)
            }),
        },
        |sublist, rx| coverage_worker_dense(circuit, sublist, rx, drop),
    );
    wrap_outcome(
        RobustCoverage {
            result: CoverageResult::new(detected_at, outcome.streamed),
            stats: outcome.stats,
            recovery: outcome.recovery,
        },
        outcome.streamed,
        outcome.tripped,
        target,
        num_patterns,
    )
}

/// Budgeted, panic-isolated [`crate::detection_counts_sharded`]; see
/// [`fault_coverage_robust`] for the budget and recovery semantics.
///
/// # Panics
///
/// Panics if `opts` fails [`SimOptions::validate`].
pub fn detection_counts_robust(
    circuit: &Circuit,
    faults: &FaultList,
    source: impl PatternSource + Clone,
    num_patterns: u64,
    threads: usize,
    opts: SimOptions,
    budget: &Budget,
) -> RunOutcome<RobustCounts> {
    opts.validate().expect("invalid SimOptions");
    let (target, _) = eval_clip(circuit, num_patterns, budget);
    if faults.is_empty() {
        return wrap_outcome(
            RobustCounts {
                counts: Vec::new(),
                num_patterns: target,
                stats: SimStats::default(),
                recovery: ShardRecovery::default(),
            },
            target,
            None,
            target,
            num_patterns,
        );
    }
    let threads = recommended_threads(threads, faults.len()).max(1);
    let mut counts = vec![0u64; faults.len()];
    let outcome = run_sharded(
        ShardedRun {
            circuit,
            faults,
            source,
            num_patterns: target,
            threads,
            budget: Some(budget),
            fallback_is_distinct: opts.engine == SimEngineKind::Event,
        },
        &mut counts,
        |sublist, rx| match opts.engine {
            SimEngineKind::Dense => counts_worker_dense(circuit, sublist, rx),
            SimEngineKind::Event => with_block_words!(opts.block_words, W => {
                counts_worker_event::<W>(circuit, sublist, rx)
            }),
        },
        |sublist, rx| counts_worker_dense(circuit, sublist, rx),
    );
    wrap_outcome(
        RobustCounts {
            counts,
            num_patterns: outcome.streamed,
            stats: outcome.stats,
            recovery: outcome.recovery,
        },
        outcome.streamed,
        outcome.tripped,
        target,
        num_patterns,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault_sim::fault_coverage;
    use crate::patterns::WeightedPatterns;
    use std::time::Duration;
    use wrt_circuit::parse_bench;
    use wrt_robust::BudgetExceeded;

    fn adder() -> Circuit {
        parse_bench(
            "INPUT(a)\nINPUT(b)\nINPUT(cin)\nOUTPUT(s)\nOUTPUT(cout)\n\
             x1 = XOR(a, b)\ns = XOR(x1, cin)\na1 = AND(a, b)\na2 = AND(x1, cin)\n\
             cout = OR(a1, a2)\n",
        )
        .unwrap()
    }

    #[test]
    fn unlimited_budget_matches_legacy_bit_for_bit() {
        let c = adder();
        let faults = FaultList::full(&c);
        let legacy = fault_coverage(&c, &faults, WeightedPatterns::equiprobable(3, 11), 500, true);
        for threads in [1, 2, 4] {
            for opts in [SimOptions::dense(), SimOptions::event(4)] {
                let robust = fault_coverage_robust(
                    &c,
                    &faults,
                    WeightedPatterns::equiprobable(3, 11),
                    500,
                    true,
                    threads,
                    opts,
                    &Budget::unlimited(),
                );
                assert!(robust.is_complete());
                let rc = robust.into_value();
                assert!(rc.recovery.is_clean());
                assert_eq!(legacy.detected_at(), rc.result.detected_at());
            }
        }
    }

    #[test]
    fn eval_budget_resolves_to_a_deterministic_pattern_clip() {
        let c = adder();
        let faults = FaultList::full(&c);
        let nodes = c.num_nodes() as u64;
        // Budget for exactly 100 patterns of canonical work.
        let budget = Budget::unlimited().with_max_evals(100 * nodes);
        let clipped = fault_coverage(&c, &faults, WeightedPatterns::equiprobable(3, 5), 100, false);
        let mut partials = Vec::new();
        for threads in [1, 2, 3, 8] {
            for opts in [SimOptions::dense(), SimOptions::event(2)] {
                let outcome = fault_coverage_robust(
                    &c,
                    &faults,
                    WeightedPatterns::equiprobable(3, 5),
                    100_000,
                    false,
                    threads,
                    opts,
                    &budget,
                );
                assert_eq!(outcome.interrupt_reason(), Some(BudgetExceeded::Evals));
                let rc = outcome.into_value();
                // Identical partial result across thread counts and
                // engines: exactly the first 100 patterns.
                assert_eq!(rc.result.detected_at(), clipped.detected_at());
                partials.push(rc.result.detected_at().to_vec());
            }
        }
        assert!(partials.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    fn eval_budget_smaller_than_one_pattern_yields_empty_partial() {
        let c = adder();
        let faults = FaultList::full(&c);
        // Fewer evals than one pattern costs: zero patterns simulated.
        let budget = Budget::unlimited().with_max_evals(1);
        let outcome = detection_counts_robust(
            &c,
            &faults,
            WeightedPatterns::equiprobable(3, 5),
            1000,
            2,
            SimOptions::dense(),
            &budget,
        );
        assert_eq!(outcome.interrupt_reason(), Some(BudgetExceeded::Evals));
        let rc = outcome.into_value();
        assert_eq!(rc.num_patterns, 0);
        assert!(rc.counts.iter().all(|&n| n == 0));
    }

    #[test]
    fn zero_time_limit_interrupts_with_empty_partial() {
        let c = adder();
        let faults = FaultList::full(&c);
        let budget = Budget::unlimited().with_time_limit(Duration::ZERO);
        let outcome = fault_coverage_robust(
            &c,
            &faults,
            WeightedPatterns::equiprobable(3, 5),
            1000,
            true,
            2,
            SimOptions::dense(),
            &budget,
        );
        assert_eq!(outcome.interrupt_reason(), Some(BudgetExceeded::Deadline));
        let rc = outcome.into_value();
        assert_eq!(rc.result.num_patterns(), 0);
        assert!(rc.result.detected_at().iter().all(Option::is_none));
    }

    #[test]
    fn cancellation_interrupts_at_the_next_chunk_boundary() {
        let c = adder();
        let faults = FaultList::full(&c);
        let mut budget = Budget::unlimited();
        let token = budget.cancel_token();
        token.store(true, std::sync::atomic::Ordering::Relaxed);
        let outcome = fault_coverage_robust(
            &c,
            &faults,
            WeightedPatterns::equiprobable(3, 5),
            1000,
            true,
            2,
            SimOptions::dense(),
            &budget,
        );
        assert_eq!(outcome.interrupt_reason(), Some(BudgetExceeded::Cancelled));
    }

    #[test]
    fn empty_fault_list_is_complete_and_clean() {
        let c = adder();
        let empty = FaultList::from_faults(vec![]);
        let outcome = fault_coverage_robust(
            &c,
            &empty,
            WeightedPatterns::equiprobable(3, 1),
            64,
            true,
            4,
            SimOptions::dense(),
            &Budget::unlimited(),
        );
        assert!(outcome.is_complete());
        let rc = outcome.into_value();
        assert_eq!(rc.result.num_faults(), 0);
        assert!(rc.recovery.is_clean());
    }
}

//! Partitioning a fault list into shards for parallel fault simulation.
//!
//! PPSFP fault simulation is embarrassingly parallel across faults: each
//! fault's detection words depend only on the fault-free values and its own
//! output cone.  A [`FaultPartition`] splits a [`FaultList`] into disjoint
//! shards so every simulation worker owns one shard end to end.
//!
//! Shards are *cone-locality-aware*: faults are ordered by their effect
//! root (node ids are topological), so faults sharing a root — and hence a
//! simulation cone — land in the same shard and the per-shard cone cache
//! stays as deduplicated as in the serial simulator.  Shard boundaries are
//! chosen to balance an estimated propagation cost rather than a raw fault
//! count, since faults rooted near the primary inputs carry much larger
//! cones than faults next to the outputs.

use wrt_circuit::{Circuit, NodeId};

use crate::list::{FaultId, FaultList};

/// A disjoint split of one fault list into shards of fault ids.
///
/// Every fault of the originating list appears in exactly one shard.
/// Empty shards are never produced: partitioning a list of `n` faults into
/// `k > n` shards yields `n` singleton shards.
///
/// # Example
///
/// ```
/// use wrt_circuit::parse_bench;
/// use wrt_fault::{FaultList, FaultPartition};
///
/// # fn main() -> Result<(), wrt_circuit::ParseBenchError> {
/// let c = parse_bench("INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = AND(a, b)\n")?;
/// let faults = FaultList::full(&c);
/// let partition = FaultPartition::cone_locality(&c, &faults, 2);
/// assert_eq!(partition.num_shards(), 2);
/// let total: usize = partition.shards().map(<[_]>::len).sum();
/// assert_eq!(total, faults.len());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultPartition {
    /// Shard boundaries in CSR layout: shard `s` is
    /// `data[offsets[s]..offsets[s + 1]]`.  Two flat arrays instead of one
    /// heap allocation per shard.
    offsets: Vec<u32>,
    data: Vec<FaultId>,
}

impl FaultPartition {
    /// Partitions `faults` into at most `num_shards` cone-locality-aware,
    /// cost-balanced shards.
    ///
    /// Faults are sorted by effect root (stable within a root), then cut
    /// into contiguous runs with approximately equal estimated simulation
    /// cost, cutting at root boundaries whenever possible so faults that
    /// share a cone share a shard.  The cost proxy for a fault is the node
    /// count downstream of its effect root — an upper bound on its cone
    /// size that needs no cone extraction of its own.
    ///
    /// A `num_shards` of 0 is treated as 1.
    pub fn cone_locality(circuit: &Circuit, faults: &FaultList, num_shards: usize) -> Self {
        let num_shards = num_shards.max(1);
        let mut order: Vec<(NodeId, FaultId)> = faults
            .iter()
            .map(|(id, f)| (f.site.effect_root(), id))
            .collect();
        order.sort_by_key(|&(root, id)| (root, id));

        // Estimated cost of simulating each fault, in sorted order: every
        // node topologically after the effect root may be in its cone.
        let weight =
            |root: NodeId| (circuit.num_nodes() - root.index()) as u64 + 1;
        let total: u64 = order.iter().map(|&(root, _)| weight(root)).sum();

        let num_shards = num_shards.min(order.len()).max(1);
        let mut offsets: Vec<u32> = Vec::with_capacity(num_shards + 1);
        offsets.push(0);
        let mut data: Vec<FaultId> = Vec::with_capacity(order.len());
        let mut spent = 0u64;
        for (k, &(root, id)) in order.iter().enumerate() {
            data.push(id);
            spent += weight(root);
            if offsets.len() == num_shards {
                continue; // the last shard absorbs the tail
            }
            // Cut when this shard reached its proportional share of the
            // total cost — preferably at a root boundary, so faults sharing
            // a cone stay together — and always early enough that every
            // remaining shard can still receive at least one fault.
            let filled = offsets.len() as u64;
            let target = total * filled / num_shards as u64;
            let remaining_faults = order.len() - (k + 1);
            let remaining_shards = num_shards - offsets.len();
            let at_root_boundary =
                order.get(k + 1).is_none_or(|&(next, _)| next != root);
            let must_cut = remaining_faults == remaining_shards;
            if must_cut || (spent >= target && at_root_boundary && remaining_faults >= remaining_shards)
            {
                offsets.push(data.len() as u32);
                // `spent` accumulates across shards against the shared
                // prefix target, so do not reset it.
            }
        }
        if data.len() as u32 > *offsets.last().expect("offsets non-empty")
            || offsets.len() == 1
        {
            offsets.push(data.len() as u32);
        }
        FaultPartition { offsets, data }
    }

    /// Partitions `0..num_faults` into round-robin shards, ignoring cone
    /// structure.  Useful as a locality-blind baseline.
    pub fn round_robin(num_faults: usize, num_shards: usize) -> Self {
        let num_shards = num_shards.clamp(1, num_faults.max(1));
        let mut offsets: Vec<u32> = Vec::with_capacity(num_shards + 1);
        offsets.push(0);
        let mut data: Vec<FaultId> = Vec::with_capacity(num_faults);
        for s in 0..num_shards {
            data.extend((s..num_faults).step_by(num_shards).map(FaultId::from_index));
            offsets.push(data.len() as u32);
        }
        FaultPartition { offsets, data }
    }

    /// Number of shards (≥ 1; at most the requested shard count).
    pub fn num_shards(&self) -> usize {
        self.offsets.len() - 1
    }

    /// The fault ids of shard `s`.
    ///
    /// # Panics
    ///
    /// Panics if `s >= self.num_shards()`.
    pub fn shard(&self, s: usize) -> &[FaultId] {
        let lo = self.offsets[s] as usize;
        let hi = self.offsets[s + 1] as usize;
        &self.data[lo..hi]
    }

    /// Iterates over all shards.
    pub fn shards(&self) -> impl Iterator<Item = &[FaultId]> {
        self.offsets
            .windows(2)
            .map(move |w| &self.data[w[0] as usize..w[1] as usize])
    }

    /// Materializes shard `s` of `faults` as its own [`FaultList`]
    /// (ordered as within the shard).
    ///
    /// # Panics
    ///
    /// Panics if `s` is out of range or the shard references ids outside
    /// `faults`.
    pub fn sublist(&self, faults: &FaultList, s: usize) -> FaultList {
        self.shard(s).iter().map(|&id| faults.fault(id)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wrt_circuit::parse_bench;

    fn chain() -> Circuit {
        parse_bench(
            "INPUT(a)\nINPUT(b)\nOUTPUT(y)\n\
             g1 = AND(a, b)\ng2 = OR(g1, b)\ng3 = NAND(g2, a)\ny = NOT(g3)\n",
        )
        .unwrap()
    }

    #[test]
    fn shards_cover_every_fault_exactly_once() {
        let c = chain();
        let faults = FaultList::full(&c);
        for k in [1, 2, 3, 5, 8] {
            let p = FaultPartition::cone_locality(&c, &faults, k);
            let mut seen: Vec<FaultId> = p.shards().flatten().copied().collect();
            seen.sort();
            let all: Vec<FaultId> = faults.iter().map(|(id, _)| id).collect();
            assert_eq!(seen, all, "k = {k}");
        }
    }

    #[test]
    fn requested_shard_count_is_respected_when_feasible() {
        let c = chain();
        let faults = FaultList::full(&c);
        for k in 1..=6 {
            let p = FaultPartition::cone_locality(&c, &faults, k);
            assert_eq!(p.num_shards(), k, "k = {k}");
            assert!(p.shards().all(|s| !s.is_empty()));
        }
    }

    #[test]
    fn more_shards_than_faults_degenerates_to_singletons() {
        let c = chain();
        let faults = FaultList::primary_inputs(&c); // 4 faults
        let p = FaultPartition::cone_locality(&c, &faults, 100);
        assert_eq!(p.num_shards(), faults.len());
        assert!(p.shards().all(|s| s.len() == 1));
    }

    #[test]
    fn same_effect_root_lands_in_same_shard() {
        // Both polarities of a stem fault share the root: with 2 shards on
        // a list made of such pairs, no pair may be split.
        let c = chain();
        let faults = FaultList::full(&c);
        let p = FaultPartition::cone_locality(&c, &faults, 3);
        for s in 0..p.num_shards() {
            let sub = p.sublist(&faults, s);
            // Roots in a shard form a contiguous range of the sorted root
            // order: every root is >= all roots of earlier shards.
            let max_prev = (0..s)
                .flat_map(|t| p.shard(t).iter())
                .map(|&id| faults.fault(id).site.effect_root())
                .max();
            if let Some(max_prev) = max_prev {
                assert!(sub
                    .iter()
                    .all(|(_, f)| f.site.effect_root() >= max_prev));
            }
        }
    }

    #[test]
    fn zero_shards_is_one_shard() {
        let c = chain();
        let faults = FaultList::full(&c);
        let p = FaultPartition::cone_locality(&c, &faults, 0);
        assert_eq!(p.num_shards(), 1);
        assert_eq!(p.shard(0).len(), faults.len());
    }

    #[test]
    fn empty_fault_list_yields_one_empty_shard() {
        let c = chain();
        let faults = FaultList::from_faults(vec![]);
        let p = FaultPartition::cone_locality(&c, &faults, 4);
        assert_eq!(p.num_shards(), 1);
        assert!(p.shard(0).is_empty());
        let rr = FaultPartition::round_robin(0, 4);
        assert_eq!(rr.num_shards(), 1);
    }

    #[test]
    fn round_robin_balances_counts() {
        let p = FaultPartition::round_robin(10, 3);
        let lens: Vec<usize> = p.shards().map(<[_]>::len).collect();
        assert_eq!(lens, vec![4, 3, 3]);
    }

    #[test]
    fn sublist_preserves_faults() {
        let c = chain();
        let faults = FaultList::full(&c);
        let p = FaultPartition::cone_locality(&c, &faults, 4);
        let mut collected = Vec::new();
        for s in 0..p.num_shards() {
            collected.extend(p.sublist(&faults, s).iter().map(|(_, f)| f));
        }
        let mut original: Vec<_> = faults.iter().map(|(_, f)| f).collect();
        collected.sort();
        original.sort();
        assert_eq!(collected, original);
    }
}

//! The fault type: a stuck-at value on a circuit line.

use std::fmt;

use wrt_circuit::{Circuit, NodeId};

/// The location of a stuck-at fault: a circuit *line*.
///
/// Classical stuck-at test theory distinguishes faults on a gate's output
/// *stem* from faults on an individual *branch* (a specific input pin of a
/// downstream gate).  On fanout-free lines the two are equivalent; at fanout
/// stems they are not, which is why both variants exist.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum FaultSite {
    /// The output stem of a node (affects all of its fanout).
    Output(NodeId),
    /// A single input pin of a gate (affects only that connection).
    InputPin {
        /// The gate whose pin is faulty.
        gate: NodeId,
        /// Zero-based pin index into the gate's fanin list.
        pin: usize,
    },
}

impl FaultSite {
    /// The node whose *value changes first* under this fault: the faulty
    /// gate for pin faults, the node itself for stem faults.
    ///
    /// This is the root of the fault's output cone, used by fault simulation
    /// to bound re-evaluation.
    pub fn effect_root(self) -> NodeId {
        match self {
            FaultSite::Output(n) => n,
            FaultSite::InputPin { gate, .. } => gate,
        }
    }

    /// The node that *drives* the faulty line: for a pin fault, the fanin
    /// node connected to that pin; for a stem fault, the node itself.
    pub fn driver(self, circuit: &Circuit) -> NodeId {
        match self {
            FaultSite::Output(n) => n,
            FaultSite::InputPin { gate, pin } => circuit.node(gate).fanin()[pin],
        }
    }
}

/// A single stuck-at fault: a [`FaultSite`] frozen at a logic value.
///
/// # Example
///
/// ```
/// use wrt_circuit::parse_bench;
/// use wrt_fault::{Fault, FaultSite};
///
/// # fn main() -> Result<(), wrt_circuit::ParseBenchError> {
/// let c = parse_bench("INPUT(a)\nOUTPUT(y)\ny = NOT(a)\n")?;
/// let a = c.node_id("a").expect("exists");
/// let f = Fault::stuck_at(FaultSite::Output(a), true);
/// assert_eq!(f.describe(&c), "a s-a-1");
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Fault {
    /// Where the fault sits.
    pub site: FaultSite,
    /// The value the line is stuck at (`false` = s-a-0, `true` = s-a-1).
    pub stuck_value: bool,
}

impl Fault {
    /// Constructs a stuck-at fault.
    pub fn stuck_at(site: FaultSite, stuck_value: bool) -> Self {
        Fault { site, stuck_value }
    }

    /// Shorthand for a stuck-at fault on a node's output stem.
    pub fn output(node: NodeId, stuck_value: bool) -> Self {
        Fault::stuck_at(FaultSite::Output(node), stuck_value)
    }

    /// Shorthand for a stuck-at fault on a gate input pin.
    pub fn input_pin(gate: NodeId, pin: usize, stuck_value: bool) -> Self {
        Fault::stuck_at(FaultSite::InputPin { gate, pin }, stuck_value)
    }

    /// Human-readable description using circuit signal names, in the
    /// conventional `line s-a-v` notation.
    pub fn describe(&self, circuit: &Circuit) -> String {
        let v = u8::from(self.stuck_value);
        match self.site {
            FaultSite::Output(n) => format!("{} s-a-{v}", circuit.node(n).name()),
            FaultSite::InputPin { gate, pin } => {
                let driver = circuit.node(gate).fanin()[pin];
                format!(
                    "{}->{} s-a-{v}",
                    circuit.node(driver).name(),
                    circuit.node(gate).name()
                )
            }
        }
    }
}

impl fmt::Display for Fault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let v = u8::from(self.stuck_value);
        match self.site {
            FaultSite::Output(n) => write!(f, "{n} s-a-{v}"),
            FaultSite::InputPin { gate, pin } => write!(f, "{gate}.in{pin} s-a-{v}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wrt_circuit::parse_bench;

    #[test]
    fn effect_root_and_driver() {
        let c = parse_bench("INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = AND(a, b)\n").unwrap();
        let a = c.node_id("a").unwrap();
        let y = c.node_id("y").unwrap();
        let pin_fault = FaultSite::InputPin { gate: y, pin: 0 };
        assert_eq!(pin_fault.effect_root(), y);
        assert_eq!(pin_fault.driver(&c), a);
        let stem = FaultSite::Output(a);
        assert_eq!(stem.effect_root(), a);
        assert_eq!(stem.driver(&c), a);
    }

    #[test]
    fn describe_names_both_ends() {
        let c = parse_bench("INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = AND(a, b)\n").unwrap();
        let y = c.node_id("y").unwrap();
        let f = Fault::input_pin(y, 1, false);
        assert_eq!(f.describe(&c), "b->y s-a-0");
        assert_eq!(Fault::output(y, true).describe(&c), "y s-a-1");
    }

    #[test]
    fn faults_order_and_hash() {
        use std::collections::HashSet;
        let c = parse_bench("INPUT(a)\nOUTPUT(y)\ny = NOT(a)\n").unwrap();
        let y = c.node_id("y").unwrap();
        let mut set = HashSet::new();
        set.insert(Fault::output(y, false));
        set.insert(Fault::output(y, false));
        set.insert(Fault::output(y, true));
        assert_eq!(set.len(), 2);
    }
}

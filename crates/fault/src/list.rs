//! Fault universes: generation of standard fault lists.

use std::fmt;

use wrt_circuit::{Circuit, GateKind, NodeId};

use crate::collapse::EquivalenceClasses;
use crate::fault::{Fault, FaultSite};

/// Index of a fault within one [`FaultList`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FaultId(pub(crate) u32);

impl FaultId {
    /// The dense index of this fault.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Constructs a `FaultId` from a dense index.
    pub fn from_index(index: usize) -> Self {
        FaultId(u32::try_from(index).expect("fault index fits in u32"))
    }
}

impl fmt::Display for FaultId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "f{}", self.0)
    }
}

/// An ordered list of stuck-at faults over one circuit.
///
/// Use [`FaultList::full`] for the complete single-stuck-at universe,
/// [`FaultList::checkpoints`] for the checkpoint-theorem reduction (primary
/// inputs + fanout branches, the usual basis for random-testability work —
/// it always contains "all stuck-at faults at the primary inputs" required
/// by the paper), or build a custom list with [`FaultList::from_faults`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultList {
    faults: Vec<Fault>,
}

impl FaultList {
    /// Builds a fault list from an explicit set of faults.
    pub fn from_faults(faults: Vec<Fault>) -> Self {
        FaultList { faults }
    }

    /// The complete single-stuck-at universe: both polarities on every node
    /// output and on every gate input pin.
    pub fn full(circuit: &Circuit) -> Self {
        let mut faults = Vec::new();
        for (id, node) in circuit.iter() {
            if node.kind() == GateKind::Const0 || node.kind() == GateKind::Const1 {
                continue; // constant lines are untestable by definition
            }
            for value in [false, true] {
                faults.push(Fault::output(id, value));
            }
            for pin in 0..node.fanin().len() {
                for value in [false, true] {
                    faults.push(Fault::input_pin(id, pin, value));
                }
            }
        }
        FaultList { faults }
    }

    /// Checkpoint faults: both polarities at every primary input and at
    /// every fanout branch.  A line is a fanout branch when its driver
    /// has more than one sink — where a primary output pad counts as a
    /// sink, since a PO stem that also feeds logic forks at the pad.
    ///
    /// By the checkpoint theorem, a test set detecting all checkpoint faults
    /// detects all single stuck-at faults in a fanout-reconvergent network
    /// built from primitive gates.
    pub fn checkpoints(circuit: &Circuit) -> Self {
        let mut faults = Vec::new();
        for &pi in circuit.inputs() {
            for value in [false, true] {
                faults.push(Fault::output(pi, value));
            }
        }
        for (id, node) in circuit.iter() {
            for (pin, &driver) in node.fanin().iter().enumerate() {
                let sinks = circuit.fanout(driver).len() + usize::from(circuit.is_output(driver));
                if sinks > 1 {
                    for value in [false, true] {
                        faults.push(Fault::input_pin(id, pin, value));
                    }
                }
            }
        }
        FaultList { faults }
    }

    /// Only the stuck-at faults at the primary inputs (the minimum fault
    /// model the paper's objective function requires).
    pub fn primary_inputs(circuit: &Circuit) -> Self {
        let faults = circuit
            .inputs()
            .iter()
            .flat_map(|&pi| [Fault::output(pi, false), Fault::output(pi, true)])
            .collect();
        FaultList { faults }
    }

    /// Number of faults in the list.
    pub fn len(&self) -> usize {
        self.faults.len()
    }

    /// Whether the list is empty.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// The fault with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn fault(&self, id: FaultId) -> Fault {
        self.faults[id.index()]
    }

    /// All faults as a slice, indexable by [`FaultId::index`].
    pub fn as_slice(&self) -> &[Fault] {
        &self.faults
    }

    /// Iterates over `(id, fault)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (FaultId, Fault)> + '_ {
        self.faults
            .iter()
            .enumerate()
            .map(|(i, &f)| (FaultId::from_index(i), f))
    }

    /// Finds the id of a fault, if present.
    pub fn id_of(&self, fault: Fault) -> Option<FaultId> {
        self.faults
            .iter()
            .position(|&f| f == fault)
            .map(FaultId::from_index)
    }

    /// Returns a new list keeping only faults for which `keep` is true.
    pub fn filtered(&self, mut keep: impl FnMut(Fault) -> bool) -> FaultList {
        FaultList {
            faults: self.faults.iter().copied().filter(|&f| keep(f)).collect(),
        }
    }

    /// Collapses the list by structural equivalence and returns the reduced
    /// list of class representatives (see [`EquivalenceClasses`]).
    pub fn collapse_equivalent(&self, circuit: &Circuit) -> FaultList {
        EquivalenceClasses::compute(circuit, self).representatives()
    }

    /// Retains primary-input stuck-at faults and deduplicates, preserving
    /// first-occurrence order.
    pub fn dedup(&self) -> FaultList {
        let mut seen = std::collections::HashSet::new();
        FaultList {
            faults: self
                .faults
                .iter()
                .copied()
                .filter(|&f| seen.insert(f))
                .collect(),
        }
    }
}

impl FromIterator<Fault> for FaultList {
    fn from_iter<T: IntoIterator<Item = Fault>>(iter: T) -> Self {
        FaultList {
            faults: iter.into_iter().collect(),
        }
    }
}

impl Extend<Fault> for FaultList {
    fn extend<T: IntoIterator<Item = Fault>>(&mut self, iter: T) {
        self.faults.extend(iter);
    }
}

/// Convenience: whether a fault sits on a primary input stem.
pub(crate) fn is_primary_input_fault(circuit: &Circuit, fault: Fault) -> bool {
    match fault.site {
        FaultSite::Output(n) => circuit.node(n).kind() == GateKind::Input,
        FaultSite::InputPin { .. } => false,
    }
}

/// All primary-input node ids touched by the list (for tests).
#[allow(dead_code)]
pub(crate) fn pi_nodes(circuit: &Circuit, list: &FaultList) -> Vec<NodeId> {
    let mut v: Vec<NodeId> = list
        .iter()
        .filter(|&(_, f)| is_primary_input_fault(circuit, f))
        .map(|(_, f)| match f.site {
            FaultSite::Output(n) => n,
            FaultSite::InputPin { .. } => unreachable!(),
        })
        .collect();
    v.sort();
    v.dedup();
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use wrt_circuit::parse_bench;

    fn two_gate() -> Circuit {
        parse_bench("INPUT(a)\nINPUT(b)\nOUTPUT(y)\nm = NAND(a, b)\ny = NOR(m, a)\n").unwrap()
    }

    #[test]
    fn full_list_counts_all_lines() {
        let c = two_gate();
        let list = FaultList::full(&c);
        // nodes: a, b, m, y = 4 stems; pins: m has 2, y has 2 = 4 pins.
        // (4 + 4) * 2 polarities = 16 faults.
        assert_eq!(list.len(), 16);
    }

    #[test]
    fn checkpoints_are_pis_plus_branches() {
        let c = two_gate();
        let list = FaultList::checkpoints(&c);
        // PIs: a, b -> 4 faults. `a` fans out to m and y: 2 branches -> 4.
        // `m` has fanout 1 so its branch is not a checkpoint.
        assert_eq!(list.len(), 8);
    }

    #[test]
    fn primary_inputs_list_covers_every_pi_both_polarities() {
        let c = two_gate();
        let list = FaultList::primary_inputs(&c);
        assert_eq!(list.len(), 2 * c.num_inputs());
        assert!(list
            .iter()
            .all(|(_, f)| is_primary_input_fault(&c, f)));
    }

    #[test]
    fn id_roundtrip_and_lookup() {
        let c = two_gate();
        let list = FaultList::full(&c);
        for (id, f) in list.iter() {
            assert_eq!(list.fault(id), f);
            assert_eq!(list.id_of(f), Some(id));
        }
    }

    #[test]
    fn filtered_and_dedup() {
        let c = two_gate();
        let list = FaultList::full(&c);
        let only_sa1 = list.filtered(|f| f.stuck_value);
        assert_eq!(only_sa1.len(), list.len() / 2);
        let mut doubled: FaultList = list.iter().map(|(_, f)| f).collect();
        doubled.extend(list.iter().map(|(_, f)| f));
        assert_eq!(doubled.dedup().len(), list.len());
    }

    #[test]
    fn constants_excluded_from_full_list() {
        use wrt_circuit::{CircuitBuilder, GateKind};
        let mut b = CircuitBuilder::new();
        let a = b.input("a");
        let one = b.const1();
        let g = b.gate(GateKind::And, "g", &[a, one]).unwrap();
        b.mark_output(g);
        let c = b.build().unwrap();
        let list = FaultList::full(&c);
        assert!(list
            .iter()
            .all(|(_, f)| f.site.driver(&c) != one || matches!(f.site, FaultSite::InputPin { .. })));
    }
}

//! Fault collapsing: equivalence classes and dominance reduction.

use std::collections::HashMap;

use wrt_circuit::{Circuit, GateKind};

use crate::fault::{Fault, FaultSite};
use crate::list::{FaultId, FaultList};

/// Structural equivalence classes over a [`FaultList`].
///
/// Two faults are *equivalent* when every test detects either both or
/// neither.  The classical local rules are applied transitively:
///
/// * a controlling value at any input of AND/NAND/OR/NOR is equivalent to
///   the corresponding output fault (e.g. AND input s-a-0 ≡ output s-a-0,
///   NAND input s-a-0 ≡ output s-a-1);
/// * NOT/BUF input faults are equivalent to the (inverted/equal) output
///   fault;
/// * on a fanout-free line, the branch (pin) fault is equivalent to the
///   stem fault.
///
/// # Example
///
/// ```
/// use wrt_circuit::parse_bench;
/// use wrt_fault::{EquivalenceClasses, FaultList};
///
/// # fn main() -> Result<(), wrt_circuit::ParseBenchError> {
/// let c = parse_bench("INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = AND(a, b)\n")?;
/// let full = FaultList::full(&c);
/// let classes = EquivalenceClasses::compute(&c, &full);
/// // a s-a-0, b s-a-0 (stems + pins) and y s-a-0 all collapse together.
/// assert!(classes.num_classes() < full.len());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct EquivalenceClasses {
    /// Union-find parent, by fault index.
    class_of: Vec<usize>,
    /// Members per class root (computed at the end).
    classes: HashMap<usize, Vec<FaultId>>,
    faults: Vec<Fault>,
}

impl EquivalenceClasses {
    /// Computes equivalence classes of `list` over `circuit`.
    pub fn compute(circuit: &Circuit, list: &FaultList) -> Self {
        let n = list.len();
        let mut uf = UnionFind::new(n);
        let index: HashMap<Fault, usize> = list
            .iter()
            .map(|(id, f)| (f, id.index()))
            .collect();
        let union = |a: Fault, b: Fault, uf: &mut UnionFind| {
            if let (Some(&ia), Some(&ib)) = (index.get(&a), index.get(&b)) {
                uf.union(ia, ib);
            }
        };

        for (gid, node) in circuit.iter() {
            // Branch ≡ stem on fanout-free lines.  A primary output is an
            // extra observation point on the stem, so a PO driving one
            // gate is *not* fanout-free: its stem fault is observable at
            // the pad even when the branch fault is not.
            for (pin, &driver) in node.fanin().iter().enumerate() {
                if circuit.fanout(driver).len() == 1 && !circuit.is_output(driver) {
                    for v in [false, true] {
                        union(
                            Fault::input_pin(gid, pin, v),
                            Fault::output(driver, v),
                            &mut uf,
                        );
                    }
                }
            }
            // Gate-local rules.
            let pins = node.fanin().len();
            match node.kind() {
                GateKind::And => {
                    for pin in 0..pins {
                        union(Fault::input_pin(gid, pin, false), Fault::output(gid, false), &mut uf);
                    }
                }
                GateKind::Nand => {
                    for pin in 0..pins {
                        union(Fault::input_pin(gid, pin, false), Fault::output(gid, true), &mut uf);
                    }
                }
                GateKind::Or => {
                    for pin in 0..pins {
                        union(Fault::input_pin(gid, pin, true), Fault::output(gid, true), &mut uf);
                    }
                }
                GateKind::Nor => {
                    for pin in 0..pins {
                        union(Fault::input_pin(gid, pin, true), Fault::output(gid, false), &mut uf);
                    }
                }
                GateKind::Not => {
                    union(Fault::input_pin(gid, 0, false), Fault::output(gid, true), &mut uf);
                    union(Fault::input_pin(gid, 0, true), Fault::output(gid, false), &mut uf);
                }
                GateKind::Buf => {
                    union(Fault::input_pin(gid, 0, false), Fault::output(gid, false), &mut uf);
                    union(Fault::input_pin(gid, 0, true), Fault::output(gid, true), &mut uf);
                }
                _ => {}
            }
        }

        let mut classes: HashMap<usize, Vec<FaultId>> = HashMap::new();
        let mut class_of = vec![0usize; n];
        for (i, slot) in class_of.iter_mut().enumerate() {
            let root = uf.find(i);
            *slot = root;
            classes.entry(root).or_default().push(FaultId::from_index(i));
        }
        EquivalenceClasses {
            class_of,
            classes,
            faults: list.as_slice().to_vec(),
        }
    }

    /// Number of equivalence classes.
    pub fn num_classes(&self) -> usize {
        self.classes.len()
    }

    /// Whether two faults of the original list are equivalent.
    pub fn equivalent(&self, a: FaultId, b: FaultId) -> bool {
        self.class_of[a.index()] == self.class_of[b.index()]
    }

    /// The members of the class containing `id`.
    pub fn class_members(&self, id: FaultId) -> &[FaultId] {
        &self.classes[&self.class_of[id.index()]]
    }

    /// One representative fault per class, as a new [`FaultList`].
    ///
    /// The representative is the member with the smallest original id;
    /// because fault lists enumerate drivers before sinks, this prefers
    /// faults closer to the primary inputs.
    pub fn representatives(&self) -> FaultList {
        let mut reps: Vec<FaultId> = self
            .classes
            .values()
            .map(|members| *members.iter().min().expect("classes are non-empty"))
            .collect();
        reps.sort();
        reps.into_iter()
            .map(|id| self.faults[id.index()])
            .collect()
    }
}

/// Dominance reduction: removes gate-output faults whose detection is
/// implied by an input-pin fault remaining in the list.
///
/// For an AND gate, any test for `input s-a-1` also detects
/// `output s-a-1`, so the output fault is *dominated* and can be dropped
/// from a detection-oriented fault list (similarly NAND output s-a-0,
/// OR output s-a-0, NOR output s-a-1).  Dominance does **not** preserve
/// detection probabilities — the dominating fault is easier to detect — so
/// the optimizer uses equivalence collapsing only; dominance is offered for
/// coverage-oriented simulation work.
pub fn dominance_collapse(circuit: &Circuit, list: &FaultList) -> FaultList {
    let has = |f: Fault| list.id_of(f).is_some();
    list.filtered(|f| {
        let FaultSite::Output(node) = f.site else {
            return true;
        };
        let kind = circuit.node(node).kind();
        let pins = circuit.node(node).fanin().len();
        if pins < 2 {
            return true; // 1-input gates are handled by equivalence
        }
        let dominated = match (kind, f.stuck_value) {
            (GateKind::And, true) => Some(true),   // dominated by input s-a-1
            (GateKind::Nand, false) => Some(true), // by input s-a-1
            (GateKind::Or, false) => Some(false),  // by input s-a-0
            (GateKind::Nor, true) => Some(false),  // by input s-a-0
            _ => None,
        };
        match dominated {
            Some(pin_value) => {
                // Keep the output fault unless some justifying pin fault
                // is present in the list.
                !(0..pins).any(|p| has(Fault::input_pin(node, p, pin_value)))
            }
            None => true,
        }
    })
}

#[derive(Debug)]
struct UnionFind {
    parent: Vec<usize>,
    rank: Vec<u8>,
}

impl UnionFind {
    fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n).collect(),
            rank: vec![0; n],
        }
    }

    fn find(&mut self, mut x: usize) -> usize {
        while self.parent[x] != x {
            self.parent[x] = self.parent[self.parent[x]];
            x = self.parent[x];
        }
        x
    }

    fn union(&mut self, a: usize, b: usize) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return;
        }
        match self.rank[ra].cmp(&self.rank[rb]) {
            std::cmp::Ordering::Less => self.parent[ra] = rb,
            std::cmp::Ordering::Greater => self.parent[rb] = ra,
            std::cmp::Ordering::Equal => {
                self.parent[rb] = ra;
                self.rank[ra] += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wrt_circuit::parse_bench;

    #[test]
    fn and_gate_collapses_to_classic_count() {
        // Single 2-input AND: full universe has 12 faults (3 lines * 2 + 2
        // pins * 2 = wait: stems a,b,y = 6, pins y.0,y.1 = 4 -> 10).
        // Classic collapsed count for a 2-input gate with free lines: 4
        // classes on the gate (in1 s-a-1, in2 s-a-1, out s-a-1 group?):
        // {a0,y.in0-0,b0?...}. We assert the well-known result: n+2 classes
        // for an n-input AND including its input stems = 4 for n=2.
        let c = parse_bench("INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = AND(a, b)\n").unwrap();
        let full = FaultList::full(&c);
        assert_eq!(full.len(), 10);
        let classes = EquivalenceClasses::compute(&c, &full);
        // {a s-a-0, y.in0 s-a-0, b s-a-0, y.in1 s-a-0, y s-a-0},
        // {a s-a-1, y.in0 s-a-1}, {b s-a-1, y.in1 s-a-1}, {y s-a-1}
        assert_eq!(classes.num_classes(), 4);
        let reps = classes.representatives();
        assert_eq!(reps.len(), 4);
    }

    #[test]
    fn inverter_chain_collapses_to_two() {
        let c = parse_bench("INPUT(a)\nOUTPUT(y)\nm = NOT(a)\ny = NOT(m)\n").unwrap();
        let full = FaultList::full(&c);
        let classes = EquivalenceClasses::compute(&c, &full);
        // Everything collapses onto {s-a-0 at a, ...} and {s-a-1 at a, ...}.
        assert_eq!(classes.num_classes(), 2);
    }

    #[test]
    fn equivalence_is_symmetric_and_transitive_here() {
        let c = parse_bench("INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = NAND(a, b)\n").unwrap();
        let full = FaultList::full(&c);
        let classes = EquivalenceClasses::compute(&c, &full);
        let a0 = full.id_of(Fault::output(c.node_id("a").unwrap(), false)).unwrap();
        let y1 = full.id_of(Fault::output(c.node_id("y").unwrap(), true)).unwrap();
        let b0 = full.id_of(Fault::output(c.node_id("b").unwrap(), false)).unwrap();
        assert!(classes.equivalent(a0, y1));
        assert!(classes.equivalent(y1, b0));
        assert!(classes.equivalent(a0, b0));
        assert!(classes.class_members(a0).len() >= 3);
    }

    #[test]
    fn fanout_branches_do_not_collapse_with_stem() {
        // `a` fans out to two gates; branch faults must stay separate from
        // the stem fault.
        let c = parse_bench(
            "INPUT(a)\nINPUT(b)\nOUTPUT(y)\nOUTPUT(z)\ny = AND(a, b)\nz = OR(a, b)\n",
        )
        .unwrap();
        let full = FaultList::full(&c);
        let classes = EquivalenceClasses::compute(&c, &full);
        let a1 = full.id_of(Fault::output(c.node_id("a").unwrap(), true)).unwrap();
        let y = c.node_id("y").unwrap();
        let ypin1 = full.id_of(Fault::input_pin(y, 0, true)).unwrap();
        assert!(!classes.equivalent(a1, ypin1));
    }

    #[test]
    fn dominance_drops_and_output_sa1() {
        let c = parse_bench("INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = AND(a, b)\n").unwrap();
        let full = FaultList::full(&c);
        let reduced = dominance_collapse(&c, &full);
        let y = c.node_id("y").unwrap();
        assert!(reduced.id_of(Fault::output(y, true)).is_none());
        assert!(reduced.id_of(Fault::output(y, false)).is_some());
        assert_eq!(reduced.len(), full.len() - 1);
    }

    #[test]
    fn dominance_keeps_output_when_no_pin_fault_present() {
        let c = parse_bench("INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = AND(a, b)\n").unwrap();
        let y = c.node_id("y").unwrap();
        let list = FaultList::from_faults(vec![Fault::output(y, true)]);
        let reduced = dominance_collapse(&c, &list);
        assert_eq!(reduced.len(), 1);
    }

    #[test]
    fn xor_gates_have_no_local_collapse() {
        let c = parse_bench("INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = XOR(a, b)\n").unwrap();
        let full = FaultList::full(&c);
        let classes = EquivalenceClasses::compute(&c, &full);
        // Only branch≡stem on the fanout-free lines collapses: stems a,b
        // merge with pins, y stems stay alone: classes = a0,a1,b0,b1,y0,y1.
        assert_eq!(classes.num_classes(), 6);
    }
}

//! Single stuck-at fault modeling for combinational circuits.
//!
//! The paper assumes "an arbitrary but fixed combinational fault model F …
//! it must contain all stuck-at-0 and stuck-at-1 faults at the primary
//! inputs" (§2.3).  This crate provides the classical single stuck-at model
//! over every circuit line (gate outputs *and* gate input pins), plus the
//! standard reductions:
//!
//! * **equivalence collapsing** (controlling-value faults at a gate's inputs
//!   are indistinguishable from the corresponding output fault),
//! * **checkpoint faults** (primary inputs + fanout branches suffice for
//!   fanout-reconvergent networks),
//! * **dominance collapsing** (drop faults whose detection is implied).
//!
//! # Example
//!
//! ```
//! use wrt_circuit::parse_bench;
//! use wrt_fault::FaultList;
//!
//! # fn main() -> Result<(), wrt_circuit::ParseBenchError> {
//! let c = parse_bench("INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = AND(a, b)\n")?;
//! let full = FaultList::full(&c);
//! let collapsed = full.collapse_equivalent(&c);
//! assert!(collapsed.len() < full.len());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]

mod collapse;
mod fault;
mod list;
mod partition;

pub use collapse::{dominance_collapse, EquivalenceClasses};
pub use fault::{Fault, FaultSite};
pub use list::{FaultId, FaultList};
pub use partition::FaultPartition;

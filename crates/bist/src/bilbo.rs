//! BILBO-style self-test sessions.
//!
//! A BILBO (built-in logic block observer) register generates patterns in
//! LFSR mode and compacts responses in MISR mode.  [`SelfTestSession`]
//! models one complete self-test run of a combinational circuit under
//! test: weighted patterns in, signature out — the deployment vehicle for
//! the optimized probabilities ("a self test module similar to the well
//! known BILBO is presented in \[Wu86\] and \[Wu87\]", §5.2).

use wrt_circuit::Circuit;
use wrt_fault::FaultList;
use wrt_sim::{FaultSimulator, PatternSource};

use crate::misr::Misr;
use crate::weighted::WeightedLfsr;

/// Result of one self-test run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SelfTestOutcome {
    /// The fault-free (golden) signature.
    pub golden_signature: u64,
    /// Per fault: whether the faulty signature differs from the golden
    /// one (i.e. the self test catches the fault).
    pub caught: Vec<bool>,
    /// Number of patterns applied.
    pub patterns: u64,
}

impl SelfTestOutcome {
    /// Fraction of faults caught by signature comparison.
    pub fn coverage(&self) -> f64 {
        if self.caught.is_empty() {
            return 1.0;
        }
        self.caught.iter().filter(|&&c| c).count() as f64 / self.caught.len() as f64
    }
}

/// A self-test session: weighted LFSR → circuit under test → MISR.
#[derive(Debug)]
pub struct SelfTestSession<'c> {
    circuit: &'c Circuit,
    generator: WeightedLfsr,
    misr_width: u32,
}

impl<'c> SelfTestSession<'c> {
    /// Creates a session with the given weighted generator.
    ///
    /// The MISR width is 32 (aliasing probability `2^-32`).
    pub fn new(circuit: &'c Circuit, generator: WeightedLfsr) -> Self {
        SelfTestSession {
            circuit,
            generator,
            misr_width: 32,
        }
    }

    /// Runs `patterns` patterns against every fault in `faults`,
    /// compacting all primary outputs into per-fault signatures.
    ///
    /// For each pattern, the primary-output response word is folded
    /// (XOR-reduced in 32-bit chunks) and absorbed by the MISR.
    pub fn run(&mut self, faults: &FaultList, patterns: u64) -> SelfTestOutcome {
        let mut sim = FaultSimulator::new(self.circuit, faults);
        let mut golden = Misr::maximal(self.misr_width).expect("tabulated width");
        let mut faulty: Vec<Misr> = vec![golden.clone(); faults.len()];
        let mut done = 0u64;
        while done < patterns {
            let limit = (patterns - done).min(64) as u32;
            let block = self.generator.next_block(limit);
            let mask = block.mask();
            let detected = sim.detect_block(&block.words, mask);
            // Absorb responses pattern by pattern: the golden response of
            // pattern j, and for each fault the response with detection
            // bits flipped (a detected pattern means some output differs;
            // we fold the difference into the compacted word).
            for j in 0..limit {
                let golden_word = self.response_word(sim.good_sim(), j);
                golden.absorb(golden_word);
                for (f, m) in faulty.iter_mut().enumerate() {
                    let diff = (detected[f] >> j) & 1;
                    m.absorb(golden_word ^ diff);
                }
            }
            done += u64::from(block.len);
        }
        let golden_signature = golden.signature();
        SelfTestOutcome {
            golden_signature,
            caught: faulty
                .iter()
                .map(|m| m.signature() != golden_signature)
                .collect(),
            patterns,
        }
    }

    /// Folds the primary-output values of pattern `j` into one MISR word.
    fn response_word(&self, sim: &wrt_sim::LogicSim<'_>, j: u32) -> u64 {
        let mut word = 0u64;
        for (k, &o) in self.circuit.outputs().iter().enumerate() {
            let bit = (sim.value(o) >> j) & 1;
            word ^= bit << (k % self.misr_width as usize);
        }
        word
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wrt_circuit::parse_bench;
    use wrt_fault::FaultList;
    use wrt_sim::fault_coverage;
    use wrt_sim::WeightedPatterns;

    fn full_adder() -> Circuit {
        parse_bench(
            "INPUT(a)\nINPUT(b)\nINPUT(cin)\nOUTPUT(s)\nOUTPUT(cout)\n\
             x1 = XOR(a, b)\ns = XOR(x1, cin)\na1 = AND(a, b)\na2 = AND(x1, cin)\n\
             cout = OR(a1, a2)\n",
        )
        .unwrap()
    }

    #[test]
    fn self_test_catches_all_faults_of_small_circuit() {
        let c = full_adder();
        let faults = FaultList::full(&c);
        let generator = WeightedLfsr::from_weights(&[0.5; 3], 4, 0xC0FFEE);
        let mut session = SelfTestSession::new(&c, generator);
        let outcome = session.run(&faults, 256);
        assert_eq!(outcome.coverage(), 1.0, "irredundant full adder");
    }

    #[test]
    fn signature_coverage_matches_direct_fault_simulation() {
        // The MISR only loses coverage through aliasing (2^-32); with a
        // handful of faults the signature verdicts must equal direct
        // detection results for the same pattern stream.
        let c = full_adder();
        let faults = FaultList::full(&c);
        let generator = WeightedLfsr::from_weights(&[0.5; 3], 4, 0xBEE);
        let mut session = SelfTestSession::new(&c, generator);
        let outcome = session.run(&faults, 128);

        let generator2 = WeightedLfsr::from_weights(&[0.5; 3], 4, 0xBEE);
        let direct = fault_coverage(&c, &faults, generator2, 128, false);
        for (k, caught) in outcome.caught.iter().enumerate() {
            assert_eq!(
                *caught,
                direct.detected_at()[k].is_some(),
                "fault {k} verdict mismatch"
            );
        }
    }

    #[test]
    fn weighted_session_beats_unweighted_on_hard_circuit() {
        // 12-input AND: p(hardest) = 2^-12 unweighted; with weights 0.94
        // the output stuck-at-0 class is caught quickly.
        let mut src = String::from("OUTPUT(y)\n");
        let mut args = Vec::new();
        for i in 0..12 {
            src.push_str(&format!("INPUT(x{i})\n"));
            args.push(format!("x{i}"));
        }
        src.push_str(&format!("y = AND({})\n", args.join(", ")));
        let c = parse_bench(&src).unwrap();
        let faults = FaultList::checkpoints(&c);
        let patterns = 2000;

        let weighted = WeightedLfsr::from_weights(&[0.9375; 12], 4, 5);
        let mut s1 = SelfTestSession::new(&c, weighted);
        let hi = s1.run(&faults, patterns).coverage();

        let unweighted = WeightedLfsr::from_weights(&[0.5; 12], 4, 5);
        let mut s2 = SelfTestSession::new(&c, unweighted);
        let lo = s2.run(&faults, patterns).coverage();
        assert!(hi > lo, "weighted {hi} vs unweighted {lo}");
        assert_eq!(hi, 1.0);
    }

    #[test]
    fn ideal_and_lfsr_sources_agree_statistically() {
        // The dyadic LFSR source is a real PatternSource; its coverage on
        // an easy circuit matches the ideal software source.
        let c = full_adder();
        let faults = FaultList::full(&c);
        let lfsr_cov = {
            let generator = WeightedLfsr::from_weights(&[0.5; 3], 4, 11);
            fault_coverage(&c, &faults, generator, 512, true).coverage()
        };
        let ideal_cov = {
            let source = WeightedPatterns::equiprobable(3, 11);
            fault_coverage(&c, &faults, source, 512, true).coverage()
        };
        assert_eq!(lfsr_cov, ideal_cov);
        assert_eq!(lfsr_cov, 1.0);
    }
}

//! Multiple-input signature registers (response compaction).

use crate::polynomials::primitive_taps;

/// A multiple-input signature register.
///
/// Each clock, the register shifts with LFSR feedback and XORs a parallel
/// response word into its state.  After a self-test session the final
/// state — the *signature* — is compared against the fault-free golden
/// signature; any difference indicates a detected fault (with aliasing
/// probability `≈ 2^-width`).
///
/// # Example
///
/// ```
/// use wrt_bist::Misr;
/// let mut golden = Misr::maximal(16).expect("degree 16 is tabulated");
/// let mut faulty = golden.clone();
/// golden.absorb(0b1010);
/// faulty.absorb(0b1011); // one response bit differs
/// assert_ne!(golden.signature(), faulty.signature());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Misr {
    width: u32,
    taps: u64,
    state: u64,
}

impl Misr {
    /// Creates a MISR with explicit feedback taps, starting at state 0.
    ///
    /// # Panics
    ///
    /// Panics if `width` is not in `1..=64` or taps exceed the width.
    pub fn new(width: u32, taps: u64) -> Self {
        assert!((1..=64).contains(&width));
        let mask = if width == 64 {
            u64::MAX
        } else {
            (1u64 << width) - 1
        };
        assert_eq!(taps & !mask, 0, "taps must fit the register width");
        Misr {
            width,
            taps,
            state: 0,
        }
    }

    /// Creates a MISR with tabulated primitive feedback, or `None` for
    /// untabulated widths.
    pub fn maximal(width: u32) -> Option<Self> {
        Some(Misr::new(width, primitive_taps(width)?))
    }

    /// Absorbs one parallel response word (low `width` bits used).
    pub fn absorb(&mut self, word: u64) {
        let feedback = u64::from((self.state & self.taps).count_ones() & 1);
        self.state = ((self.state >> 1) | (feedback << (self.width - 1))) ^ self.masked(word);
    }

    /// The current signature.
    pub fn signature(&self) -> u64 {
        self.state
    }

    /// Resets to the all-zero state.
    pub fn reset(&mut self) {
        self.state = 0;
    }

    fn masked(&self, word: u64) -> u64 {
        if self.width == 64 {
            word
        } else {
            word & ((1u64 << self.width) - 1)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_streams_give_identical_signatures() {
        let mut a = Misr::maximal(16).unwrap();
        let mut c = Misr::maximal(16).unwrap();
        for w in [1u64, 5, 0xFFFF, 0, 0x1234] {
            a.absorb(w);
            c.absorb(w);
        }
        assert_eq!(a.signature(), c.signature());
    }

    #[test]
    fn single_bit_difference_changes_signature() {
        // Linearity: an error never cancels against itself in one absorb.
        let mut a = Misr::maximal(16).unwrap();
        let mut c = Misr::maximal(16).unwrap();
        for w in 0..50u64 {
            a.absorb(w);
            c.absorb(if w == 25 { w ^ 0x80 } else { w });
        }
        assert_ne!(a.signature(), c.signature());
    }

    #[test]
    fn reset_restores_initial_state() {
        let mut m = Misr::maximal(8).unwrap();
        m.absorb(0xAB);
        assert_ne!(m.signature(), 0);
        m.reset();
        assert_eq!(m.signature(), 0);
    }

    #[test]
    fn error_propagates_across_later_absorbs() {
        // Once states diverge, further equal inputs keep them apart
        // (XOR linearity: difference evolves as an LFSR, never to zero).
        let mut a = Misr::maximal(12).unwrap();
        let mut c = Misr::maximal(12).unwrap();
        a.absorb(1);
        c.absorb(3);
        for w in 0..200u64 {
            a.absorb(w);
            c.absorb(w);
            assert_ne!(a.signature(), c.signature(), "aliased at step {w}");
        }
    }
}

//! Primitive feedback polynomials for maximal-length LFSRs.
//!
//! One primitive polynomial per degree 2..=64 (tap positions from the
//! standard tables, e.g. Xilinx XAPP052): an LFSR with these taps cycles
//! through all `2^n − 1` non-zero states.  The degree-64 entry is what
//! [`crate::WeightedLfsr`] builds its per-input streams from: a 2^64 − 1
//! bit period cannot wrap within any realistic test-length budget, unlike
//! the previous degree-32 generator (2^32 − 1 bits ≈ 2^26 words).

/// Largest degree with a tabulated primitive polynomial.
pub const MAX_TABULATED_DEGREE: u32 = 64;

/// Tap mask of a primitive polynomial of the given degree, or `None` if
/// the degree is outside `2..=64`.
///
/// The mask is laid out for a *right-shifting* Fibonacci register: tap
/// position `k` (1-based, `k = degree` always present) sets bit
/// `degree − k`, so bit 0 — the bit being shifted out — is always tapped,
/// which keeps the state update bijective.  The feedback bit is the XOR
/// of the tapped state bits.
///
/// # Example
///
/// ```
/// let taps = wrt_bist::primitive_taps(4).expect("tabulated");
/// assert_eq!(taps, 0b0011); // x^4 + x^3 + 1, positions {4, 3}
/// ```
pub fn primitive_taps(degree: u32) -> Option<u64> {
    let positions: &[u32] = match degree {
        2 => &[2, 1],
        3 => &[3, 2],
        4 => &[4, 3],
        5 => &[5, 3],
        6 => &[6, 5],
        7 => &[7, 6],
        8 => &[8, 6, 5, 4],
        9 => &[9, 5],
        10 => &[10, 7],
        11 => &[11, 9],
        12 => &[12, 6, 4, 1],
        13 => &[13, 4, 3, 1],
        14 => &[14, 5, 3, 1],
        15 => &[15, 14],
        16 => &[16, 15, 13, 4],
        17 => &[17, 14],
        18 => &[18, 11],
        19 => &[19, 6, 2, 1],
        20 => &[20, 17],
        21 => &[21, 19],
        22 => &[22, 21],
        23 => &[23, 18],
        24 => &[24, 23, 22, 17],
        25 => &[25, 22],
        26 => &[26, 6, 2, 1],
        27 => &[27, 5, 2, 1],
        28 => &[28, 25],
        29 => &[29, 27],
        30 => &[30, 6, 4, 1],
        31 => &[31, 28],
        32 => &[32, 22, 2, 1],
        33 => &[33, 20],
        34 => &[34, 27, 2, 1],
        35 => &[35, 33],
        36 => &[36, 25],
        37 => &[37, 5, 4, 3, 2, 1],
        38 => &[38, 6, 5, 1],
        39 => &[39, 35],
        40 => &[40, 38, 21, 19],
        41 => &[41, 38],
        42 => &[42, 41, 20, 19],
        43 => &[43, 42, 38, 37],
        44 => &[44, 43, 18, 17],
        45 => &[45, 44, 42, 41],
        46 => &[46, 45, 26, 25],
        47 => &[47, 42],
        48 => &[48, 47, 21, 20],
        49 => &[49, 40],
        50 => &[50, 49, 24, 23],
        51 => &[51, 50, 36, 35],
        52 => &[52, 49],
        53 => &[53, 52, 38, 37],
        54 => &[54, 53, 18, 17],
        55 => &[55, 31],
        56 => &[56, 55, 35, 34],
        57 => &[57, 50],
        58 => &[58, 39],
        59 => &[59, 58, 38, 37],
        60 => &[60, 59],
        61 => &[61, 60, 46, 45],
        62 => &[62, 61, 6, 5],
        63 => &[63, 62],
        64 => &[64, 63, 61, 60],
        _ => return None,
    };
    Some(
        positions
            .iter()
            .fold(0u64, |mask, &pos| mask | (1u64 << (degree - pos))),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_tabulated_degrees_present() {
        for degree in 2..=MAX_TABULATED_DEGREE {
            let taps = primitive_taps(degree).expect("tabulated");
            assert!(taps & 1 != 0, "bit 0 always tapped (bijectivity)");
            if degree < 64 {
                assert!(taps < (1u64 << degree));
            }
        }
    }

    #[test]
    fn out_of_range_degrees_are_none() {
        assert!(primitive_taps(0).is_none());
        assert!(primitive_taps(1).is_none());
        assert!(primitive_taps(65).is_none());
    }

    #[test]
    fn small_degrees_achieve_maximal_period() {
        // Exhaustively verify primitivity for degrees 2..=16 by cycling.
        for degree in 2..=16u32 {
            let taps = primitive_taps(degree).unwrap();
            let mut state = 1u64;
            let period_target = (1u64 << degree) - 1;
            let mut period = 0u64;
            loop {
                let feedback = (state & taps).count_ones() & 1;
                state = (state >> 1) | (u64::from(feedback) << (degree - 1));
                period += 1;
                if state == 1 {
                    break;
                }
                assert!(period <= period_target, "degree {degree} cycled early");
            }
            assert_eq!(period, period_target, "degree {degree} not maximal");
        }
    }
}

//! Weighted pattern generation from LFSR bits.
//!
//! On-chip, an unequiprobable bit is produced by combining equiprobable
//! LFSR bits: ANDing `k` bits gives weight `2^-k`, inverting gives
//! `1 − 2^-k`.  The realizable weights are therefore *dyadic*; the
//! continuous probabilities from `wrt-core` are first snapped to the
//! nearest realizable value ([`DyadicWeight::closest`]).

use wrt_sim::{PatternBlock, PatternSource};

use crate::lfsr::Lfsr;

/// A hardware-realizable weight: `2^-k` or `1 − 2^-k`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DyadicWeight {
    /// Number of LFSR bits ANDed together (`k ≥ 1`).
    pub bits: u32,
    /// Invert the AND output (realizing `1 − 2^-k`).
    pub invert: bool,
}

impl DyadicWeight {
    /// The closest realizable weight to `w`, with at most `max_bits`
    /// ANDed bits.
    ///
    /// # Panics
    ///
    /// Panics if `max_bits == 0`.
    pub fn closest(w: f64, max_bits: u32) -> Self {
        assert!(max_bits > 0, "need at least one LFSR bit");
        let w = w.clamp(0.0, 1.0);
        let (target, invert) = if w <= 0.5 { (w, false) } else { (1.0 - w, true) };
        // Choose k minimizing |2^-k − target|.
        let mut best = DyadicWeight { bits: 1, invert };
        let mut best_err = (0.5 - target).abs();
        for k in 2..=max_bits {
            let err = (0.5f64.powi(k as i32) - target).abs();
            if err < best_err {
                best_err = err;
                best = DyadicWeight { bits: k, invert };
            }
        }
        best
    }

    /// The weight this configuration actually realizes.
    pub fn realized(&self) -> f64 {
        let base = 0.5f64.powi(self.bits as i32);
        if self.invert {
            1.0 - base
        } else {
            base
        }
    }
}

/// A weighted pattern generator driven by one LFSR.
///
/// Implements [`PatternSource`], so it can drive the fault simulator
/// directly — this is the "patterns produced on the chip during self
/// test" path of the paper's introduction.
///
/// # Example
///
/// ```
/// use wrt_bist::WeightedLfsr;
/// use wrt_sim::PatternSource;
/// let mut gen = WeightedLfsr::from_weights(&[0.9, 0.1, 0.5], 4, 0xBEEF);
/// let block = gen.next_block(64);
/// assert_eq!(block.words.len(), 3);
/// let realized = gen.realized_weights();
/// assert!((realized[2] - 0.5).abs() < 1e-12);
/// ```
#[derive(Debug, Clone)]
pub struct WeightedLfsr {
    weights: Vec<DyadicWeight>,
    lfsr: Lfsr,
}

impl WeightedLfsr {
    /// Creates a generator with explicit per-input dyadic weights.
    pub fn new(weights: Vec<DyadicWeight>, seed: u64) -> Self {
        WeightedLfsr {
            weights,
            lfsr: Lfsr::maximal(32, seed).expect("degree 32 is tabulated"),
        }
    }

    /// Creates a generator by snapping continuous weights to the closest
    /// dyadic configuration with at most `max_bits` AND inputs.
    pub fn from_weights(weights: &[f64], max_bits: u32, seed: u64) -> Self {
        WeightedLfsr::new(
            weights
                .iter()
                .map(|&w| DyadicWeight::closest(w, max_bits))
                .collect(),
            seed,
        )
    }

    /// The weights the hardware actually realizes.
    pub fn realized_weights(&self) -> Vec<f64> {
        self.weights.iter().map(DyadicWeight::realized).collect()
    }

    /// Worst absolute difference between requested and realized weight.
    pub fn quantization_error(&self, requested: &[f64]) -> f64 {
        requested
            .iter()
            .zip(self.realized_weights())
            .map(|(&r, q)| (r - q).abs())
            .fold(0.0, f64::max)
    }
}

impl PatternSource for WeightedLfsr {
    fn next_block(&mut self, limit: u32) -> PatternBlock {
        let limit = limit.clamp(1, 64);
        let words = self
            .weights
            .iter()
            .map(|w| {
                let mut word = u64::MAX;
                for _ in 0..w.bits {
                    word &= self.lfsr.next_word(64);
                }
                if w.invert {
                    !word
                } else {
                    word
                }
            })
            .collect();
        PatternBlock { words, len: limit }
    }

    fn num_inputs(&self) -> usize {
        self.weights.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn closest_picks_the_right_branch() {
        assert_eq!(
            DyadicWeight::closest(0.5, 8),
            DyadicWeight {
                bits: 1,
                invert: false
            }
        );
        assert_eq!(
            DyadicWeight::closest(0.25, 8),
            DyadicWeight {
                bits: 2,
                invert: false
            }
        );
        assert_eq!(
            DyadicWeight::closest(0.95, 8),
            DyadicWeight {
                bits: 4,
                invert: true
            }
        ); // 1 - 1/16 = 0.9375 vs 1 - 1/32 = 0.96875: 0.96875 closer? |0.95-0.9375|=0.0125, |0.95-0.96875|=0.01875: bits=4 wins.
    }

    #[test]
    fn realized_weight_roundtrip() {
        for &w in &[0.05, 0.1, 0.3, 0.5, 0.7, 0.9, 0.97] {
            let d = DyadicWeight::closest(w, 6);
            let r = d.realized();
            assert!((r - w).abs() <= 0.26, "w = {w}, realized = {r}");
        }
    }

    #[test]
    fn max_bits_budget_is_respected() {
        let d = DyadicWeight::closest(0.001, 3);
        assert!(d.bits <= 3);
        assert_eq!(d.realized(), 0.125);
    }

    #[test]
    fn generated_bits_match_realized_weight() {
        let mut generator = WeightedLfsr::from_weights(&[0.25, 0.875], 4, 77);
        let mut ones = [0u64; 2];
        let blocks = 400;
        for _ in 0..blocks {
            let b = generator.next_block(64);
            ones[0] += u64::from(b.words[0].count_ones());
            ones[1] += u64::from(b.words[1].count_ones());
        }
        let total = (blocks * 64) as f64;
        assert!((ones[0] as f64 / total - 0.25).abs() < 0.02);
        assert!((ones[1] as f64 / total - 0.875).abs() < 0.02);
    }

    #[test]
    fn deterministic_per_seed() {
        let mut a = WeightedLfsr::from_weights(&[0.5; 4], 4, 9);
        let mut b = WeightedLfsr::from_weights(&[0.5; 4], 4, 9);
        assert_eq!(a.next_block(64), b.next_block(64));
    }

    #[test]
    fn quantization_error_reported() {
        let requested = [0.3, 0.95];
        let generator = WeightedLfsr::from_weights(&requested, 4, 1);
        let err = generator.quantization_error(&requested);
        assert!(err > 0.0 && err < 0.06, "err = {err}");
    }
}

//! Weighted pattern generation from LFSR bits.
//!
//! On-chip, an unequiprobable bit is produced by combining equiprobable
//! LFSR bits: ANDing `k` bits gives weight `2^-k`, inverting gives
//! `1 − 2^-k`.  The realizable weights are therefore *dyadic*; the
//! continuous probabilities from `wrt-core` are first snapped to the
//! nearest realizable value ([`DyadicWeight::closest`]).

use wrt_sim::{PatternBlock, PatternSource};

use crate::lfsr::Lfsr;

/// A hardware-realizable weight: `2^-k` or `1 − 2^-k`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DyadicWeight {
    /// Number of LFSR bits ANDed together (`k ≥ 1`).
    pub bits: u32,
    /// Invert the AND output (realizing `1 − 2^-k`).
    pub invert: bool,
}

impl DyadicWeight {
    /// The closest realizable weight to `w`, with at most `max_bits`
    /// ANDed bits.
    ///
    /// # Panics
    ///
    /// Panics if `max_bits == 0`.
    pub fn closest(w: f64, max_bits: u32) -> Self {
        assert!(max_bits > 0, "need at least one LFSR bit");
        let w = w.clamp(0.0, 1.0);
        let (target, invert) = if w <= 0.5 { (w, false) } else { (1.0 - w, true) };
        // Choose k minimizing |2^-k − target|.
        let mut best = DyadicWeight { bits: 1, invert };
        let mut best_err = (0.5 - target).abs();
        for k in 2..=max_bits {
            let err = (0.5f64.powi(k as i32) - target).abs();
            if err < best_err {
                best_err = err;
                best = DyadicWeight { bits: k, invert };
            }
        }
        best
    }

    /// The weight this configuration actually realizes.
    pub fn realized(&self) -> f64 {
        let base = 0.5f64.powi(self.bits as i32);
        if self.invert {
            1.0 - base
        } else {
            base
        }
    }
}

/// Feedback degree of each per-input LFSR stream.
///
/// Degree 64 gives every stream a 2^64 − 1 bit period, so the generator
/// state cannot recur within any realistic test-length budget; the
/// previous single degree-32 generator wrapped after 2^32 − 1 bits
/// (≈ 2^26 words), well inside long runs over wide circuits.
pub const STREAM_DEGREE: u32 = 64;

/// A weighted pattern generator with one independent LFSR per input.
///
/// Implements [`PatternSource`], so it can drive the fault simulator
/// directly — this is the "patterns produced on the chip during self
/// test" path of the paper's introduction.
///
/// Each input owns its own maximal-length degree-[`STREAM_DEGREE`] LFSR,
/// seeded from a per-input SplitMix64 derivation of the generator seed.
/// Feeding all inputs from *one* serial register (an earlier design, and
/// a tempting hardware shortcut) makes the per-input words successive
/// windows of the same m-sequence, so inputs are structurally
/// cross-correlated — every input's bits are a fixed linear function of
/// any other input's.  Independent streams also make an input's sequence
/// a function of `(seed, input index)` alone, invariant under the number
/// of other inputs.
///
/// # Example
///
/// ```
/// use wrt_bist::WeightedLfsr;
/// use wrt_sim::PatternSource;
/// let mut gen = WeightedLfsr::from_weights(&[0.9, 0.1, 0.5], 4, 0xBEEF);
/// let block = gen.next_block(64);
/// assert_eq!(block.words.len(), 3);
/// let realized = gen.realized_weights();
/// assert!((realized[2] - 0.5).abs() < 1e-12);
/// ```
#[derive(Debug, Clone)]
pub struct WeightedLfsr {
    weights: Vec<DyadicWeight>,
    streams: Vec<Lfsr>,
}

/// SplitMix64 finalizer: decorrelates the per-input stream seeds.
fn stream_seed(seed: u64, input: usize) -> u64 {
    let mut z = seed.wrapping_add((input as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl WeightedLfsr {
    /// Creates a generator with explicit per-input dyadic weights.
    pub fn new(weights: Vec<DyadicWeight>, seed: u64) -> Self {
        let streams = (0..weights.len())
            .map(|k| {
                Lfsr::maximal(STREAM_DEGREE, stream_seed(seed, k))
                    .expect("stream degree is tabulated")
            })
            .collect();
        WeightedLfsr { weights, streams }
    }

    /// Creates a generator by snapping continuous weights to the closest
    /// dyadic configuration with at most `max_bits` AND inputs.
    pub fn from_weights(weights: &[f64], max_bits: u32, seed: u64) -> Self {
        WeightedLfsr::new(
            weights
                .iter()
                .map(|&w| DyadicWeight::closest(w, max_bits))
                .collect(),
            seed,
        )
    }

    /// The weights the hardware actually realizes.
    pub fn realized_weights(&self) -> Vec<f64> {
        self.weights.iter().map(DyadicWeight::realized).collect()
    }

    /// Feedback degree of the per-input streams; each stream's period is
    /// `2^width − 1` bits.
    pub fn stream_width(&self) -> u32 {
        STREAM_DEGREE
    }

    /// Worst absolute difference between requested and realized weight.
    pub fn quantization_error(&self, requested: &[f64]) -> f64 {
        requested
            .iter()
            .zip(self.realized_weights())
            .map(|(&r, q)| (r - q).abs())
            .fold(0.0, f64::max)
    }
}

impl PatternSource for WeightedLfsr {
    fn next_block(&mut self, limit: u32) -> PatternBlock {
        let limit = limit.clamp(1, 64);
        let words = self
            .weights
            .iter()
            .zip(&mut self.streams)
            .map(|(w, lfsr)| {
                let mut word = u64::MAX;
                for _ in 0..w.bits {
                    word &= lfsr.next_word(64);
                }
                if w.invert {
                    !word
                } else {
                    word
                }
            })
            .collect();
        PatternBlock { words, len: limit }
    }

    fn num_inputs(&self) -> usize {
        self.weights.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn closest_picks_the_right_branch() {
        assert_eq!(
            DyadicWeight::closest(0.5, 8),
            DyadicWeight {
                bits: 1,
                invert: false
            }
        );
        assert_eq!(
            DyadicWeight::closest(0.25, 8),
            DyadicWeight {
                bits: 2,
                invert: false
            }
        );
        assert_eq!(
            DyadicWeight::closest(0.95, 8),
            DyadicWeight {
                bits: 4,
                invert: true
            }
        ); // 1 - 1/16 = 0.9375 vs 1 - 1/32 = 0.96875: 0.96875 closer? |0.95-0.9375|=0.0125, |0.95-0.96875|=0.01875: bits=4 wins.
    }

    #[test]
    fn realized_weight_roundtrip() {
        for &w in &[0.05, 0.1, 0.3, 0.5, 0.7, 0.9, 0.97] {
            let d = DyadicWeight::closest(w, 6);
            let r = d.realized();
            assert!((r - w).abs() <= 0.26, "w = {w}, realized = {r}");
        }
    }

    #[test]
    fn max_bits_budget_is_respected() {
        let d = DyadicWeight::closest(0.001, 3);
        assert!(d.bits <= 3);
        assert_eq!(d.realized(), 0.125);
    }

    #[test]
    fn generated_bits_match_realized_weight() {
        let mut generator = WeightedLfsr::from_weights(&[0.25, 0.875], 4, 77);
        let mut ones = [0u64; 2];
        let blocks = 400;
        for _ in 0..blocks {
            let b = generator.next_block(64);
            ones[0] += u64::from(b.words[0].count_ones());
            ones[1] += u64::from(b.words[1].count_ones());
        }
        let total = (blocks * 64) as f64;
        assert!((ones[0] as f64 / total - 0.25).abs() < 0.02);
        assert!((ones[1] as f64 / total - 0.875).abs() < 0.02);
    }

    #[test]
    fn deterministic_per_seed() {
        let mut a = WeightedLfsr::from_weights(&[0.5; 4], 4, 9);
        let mut b = WeightedLfsr::from_weights(&[0.5; 4], 4, 9);
        assert_eq!(a.next_block(64), b.next_block(64));
    }

    #[test]
    fn quantization_error_reported() {
        let requested = [0.3, 0.95];
        let generator = WeightedLfsr::from_weights(&requested, 4, 1);
        let err = generator.quantization_error(&requested);
        assert!(err > 0.0 && err < 0.06, "err = {err}");
    }

    /// Whether `bits` (consecutive outputs, index = time) satisfies the
    /// linear recurrence of a width-`width` Fibonacci LFSR with tap mask
    /// `taps` at *every* checkable position — true exactly when the bits
    /// are one serial window of such a register's output.
    fn satisfies_serial_recurrence(bits: &[bool], width: u32, taps: u64) -> bool {
        let w = width as usize;
        assert!(bits.len() > w, "need more than one register of bits");
        (0..bits.len() - w).all(|t| {
            let mut feedback = false;
            for (k, bit) in bits[t..t + w].iter().enumerate() {
                if (taps >> k) & 1 == 1 {
                    feedback ^= bit;
                }
            }
            feedback == bits[t + w]
        })
    }

    fn word_bits(word: u64) -> Vec<bool> {
        (0..64).map(|k| (word >> k) & 1 == 1).collect()
    }

    #[test]
    fn adjacent_inputs_are_not_windows_of_one_serial_stream() {
        // Regression: the generator used to draw every input's word from
        // one serial register, making input k+1's word the next 64 bits of
        // the same m-sequence as input k's — the concatenation satisfied
        // the register's linear recurrence at every position, i.e. the
        // inputs were deterministic linear functions of each other.
        let mut generator = WeightedLfsr::from_weights(&[0.5, 0.5], 4, 0x5EED);
        for block in 0..8 {
            let b = generator.next_block(64);
            let mut concat = word_bits(b.words[0]);
            concat.extend(word_bits(b.words[1]));
            // Not a window of the legacy degree-32 serial stream...
            let legacy = crate::primitive_taps(32).unwrap();
            assert!(
                !satisfies_serial_recurrence(&concat, 32, legacy),
                "block {block}: inputs are windows of one degree-32 stream"
            );
            // ...and not of a single stream at the current degree either.
            let current = crate::primitive_taps(STREAM_DEGREE).unwrap();
            assert!(
                !satisfies_serial_recurrence(&concat, STREAM_DEGREE, current),
                "block {block}: inputs are windows of one degree-{STREAM_DEGREE} stream"
            );
            // Each input on its own *is* a serial window of its private
            // stream (sanity check of the recurrence test itself, over
            // two consecutive blocks of the same input).
            if block == 0 {
                let b2 = generator.next_block(64);
                let mut own = word_bits(b.words[0]);
                own.extend(word_bits(b2.words[0]));
                assert!(satisfies_serial_recurrence(&own, STREAM_DEGREE, current));
            }
        }
    }

    #[test]
    fn boundary_weights_snap_to_the_extreme_realizable_dyadics() {
        // p = 0.0 and p = 1.0 (the m = 0 / m = 2^k grid boundaries) are
        // not realizable by ANDing k LFSR bits; `closest` must snap them
        // to the extreme realizable weights 2^-k and 1 − 2^-k — never
        // panic, never produce a degenerate 0-bit configuration.
        for max_bits in 1..=8u32 {
            let zero = DyadicWeight::closest(0.0, max_bits);
            assert_eq!(zero.bits, max_bits);
            assert!(!zero.invert);
            assert_eq!(zero.realized(), 0.5f64.powi(max_bits as i32));
            let one = DyadicWeight::closest(1.0, max_bits);
            assert_eq!(one.bits, max_bits);
            assert!(one.invert);
            assert_eq!(one.realized(), 1.0 - 0.5f64.powi(max_bits as i32));
            // Out-of-range requests clamp to the same boundaries.
            assert_eq!(DyadicWeight::closest(-3.0, max_bits), zero);
            assert_eq!(DyadicWeight::closest(7.0, max_bits), one);
        }
    }

    #[test]
    fn exhaustive_dyadic_grid_snaps_within_half_a_step() {
        // Every m / 2^k on the k ≤ 6 grid (boundaries included): the
        // snapped weight must be the best realizable approximation, and
        // exactly representable requests (interior grid points with one
        // significant bit) must round-trip exactly.
        let max_bits = 6u32;
        for k in 1u32..=max_bits {
            let denom = 1u64 << k;
            for m in 0..=denom {
                let w = m as f64 / denom as f64;
                let snapped = DyadicWeight::closest(w, max_bits).realized();
                let err = (snapped - w).abs();
                // Best possible error over the realizable set.
                let best = (1..=max_bits)
                    .flat_map(|b| {
                        let base = 0.5f64.powi(b as i32);
                        [base, 1.0 - base]
                    })
                    .map(|r| (r - w).abs())
                    .fold(f64::INFINITY, f64::min);
                assert!(
                    err <= best + 1e-15,
                    "w = {m}/{denom}: snapped to {snapped} (err {err}, best {best})"
                );
            }
        }
        // One-bit interior points are exact.
        assert_eq!(DyadicWeight::closest(0.125, max_bits).realized(), 0.125);
        assert_eq!(DyadicWeight::closest(0.875, max_bits).realized(), 0.875);
    }

    #[test]
    fn half_weight_is_stream_identical_to_the_raw_lfsr() {
        // bits = 1, no inversion: the generated word must be the private
        // stream's raw word — the generator adds nothing on top (the
        // scalar-compare analogue of the software path's p = 0.5 case).
        let seed = 0xFEED;
        let mut generator = WeightedLfsr::new(
            vec![
                DyadicWeight { bits: 1, invert: false },
                DyadicWeight { bits: 1, invert: true },
            ],
            seed,
        );
        let mut raw0 = Lfsr::maximal(STREAM_DEGREE, stream_seed(seed, 0)).unwrap();
        let mut raw1 = Lfsr::maximal(STREAM_DEGREE, stream_seed(seed, 1)).unwrap();
        for _ in 0..16 {
            let block = generator.next_block(64);
            assert_eq!(block.words[0], raw0.next_word(64));
            assert_eq!(block.words[1], !raw1.next_word(64));
        }
    }

    #[test]
    fn boundary_snapped_weights_consume_exactly_bits_words_per_block() {
        // A boundary weight snapped to 2^-k (or 1 − 2^-k) ANDs exactly k
        // raw words per block: the stream advance is the configured bit
        // budget, nothing more — mirroring the raw stream proves both
        // the draw count and the word values.
        let seed = 0xB0B;
        let max_bits = 4u32;
        let mut generator = WeightedLfsr::from_weights(&[0.0, 1.0], max_bits, seed);
        let mut raw0 = Lfsr::maximal(STREAM_DEGREE, stream_seed(seed, 0)).unwrap();
        let mut raw1 = Lfsr::maximal(STREAM_DEGREE, stream_seed(seed, 1)).unwrap();
        for _ in 0..8 {
            let block = generator.next_block(64);
            let mut and0 = u64::MAX;
            let mut and1 = u64::MAX;
            for _ in 0..max_bits {
                and0 &= raw0.next_word(64);
                and1 &= raw1.next_word(64);
            }
            assert_eq!(block.words[0], and0, "weight 0.0 snaps to 2^-4");
            assert_eq!(block.words[1], !and1, "weight 1.0 snaps to 1 - 2^-4");
        }
        // And the realized densities are one-sided as the snap dictates.
        let realized = generator.realized_weights();
        assert_eq!(realized, vec![0.0625, 0.9375]);
    }

    #[test]
    fn input_streams_are_pairwise_decorrelated() {
        let mut generator = WeightedLfsr::from_weights(&[0.5; 3], 4, 0xACE);
        let blocks = 200u32;
        let pairs = [(0usize, 1usize), (0, 2), (1, 2)];
        let mut agree = [0u64; 3];
        for _ in 0..blocks {
            let b = generator.next_block(64);
            for (slot, &(i, j)) in pairs.iter().enumerate() {
                agree[slot] += u64::from((!(b.words[i] ^ b.words[j])).count_ones());
            }
        }
        let total = f64::from(blocks) * 64.0;
        for (slot, &(i, j)) in pairs.iter().enumerate() {
            let frac = agree[slot] as f64 / total;
            assert!(
                (frac - 0.5).abs() < 0.03,
                "inputs {i} and {j} agree on {frac} of bits"
            );
        }
    }

    #[test]
    fn input_stream_depends_only_on_seed_and_position() {
        // With per-input streams, adding more inputs must not reshuffle
        // the bits of existing ones (the serial design interleaved one
        // stream across however many inputs there were).
        let mut narrow = WeightedLfsr::from_weights(&[0.5; 2], 4, 99);
        let mut wide = WeightedLfsr::from_weights(&[0.5; 5], 4, 99);
        for _ in 0..4 {
            let a = narrow.next_block(64);
            let b = wide.next_block(64);
            assert_eq!(a.words[0], b.words[0]);
            assert_eq!(a.words[1], b.words[1]);
        }
    }

    #[test]
    fn stream_state_does_not_recur_within_budget() {
        // Period guard: the per-input register must be wide enough that
        // the whole generator cannot wrap on long runs (the legacy shared
        // degree-32 register recurred after 2^32 − 1 bits ≈ 2^26 words).
        let generator = WeightedLfsr::from_weights(&[0.5], 4, 7);
        assert!(generator.stream_width() >= 64);
        // Direct lower-bound check: the Fibonacci update is invertible,
        // so any cycle passes through the start state; 2^20 steps without
        // returning proves the period exceeds 2^20, and primitivity of
        // the tabulated degree-64 taps supplies the rest (2^64 − 1).
        let mut lfsr = Lfsr::maximal(STREAM_DEGREE, 0xDEAD_BEEF).unwrap();
        let start = lfsr.state();
        for step in 0..(1u32 << 20) {
            lfsr.step();
            assert_ne!(lfsr.state(), start, "state recurred after {step} steps");
        }
    }
}

//! Linear feedback shift registers.

use crate::polynomials::primitive_taps;

/// Feedback structure of an [`Lfsr`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LfsrForm {
    /// External feedback: one XOR of the tapped bits feeds the top bit.
    #[default]
    Fibonacci,
    /// Internal feedback: the output bit XORs into every tapped position.
    Galois,
}

/// A linear feedback shift register of up to 64 bits.
///
/// With primitive taps (see [`crate::primitive_taps`]) the register
/// cycles through all `2^width − 1` non-zero states, which is the
/// classical on-chip source of pseudo-random test patterns.
///
/// # Example
///
/// ```
/// use wrt_bist::{Lfsr, LfsrForm};
/// let mut a = Lfsr::new(8, wrt_bist::primitive_taps(8).expect("tabulated"), 0x5A, LfsrForm::Fibonacci);
/// let mut b = a.clone();
/// assert_eq!(a.step(), b.step());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Lfsr {
    width: u32,
    taps: u64,
    state: u64,
    form: LfsrForm,
}

impl Lfsr {
    /// Creates an LFSR with explicit taps.
    ///
    /// A zero seed is silently replaced by 1 (the all-zero state is the
    /// lock-up state of XOR feedback).
    ///
    /// # Panics
    ///
    /// Panics if `width` is not in `1..=64` or `taps` has bits above
    /// `width`.
    pub fn new(width: u32, taps: u64, seed: u64, form: LfsrForm) -> Self {
        assert!((1..=64).contains(&width), "width must be 1..=64");
        let mask = width_mask(width);
        assert_eq!(taps & !mask, 0, "taps must fit the register width");
        let mut state = seed & mask;
        if state == 0 {
            state = 1;
        }
        Lfsr {
            width,
            taps,
            state,
            form,
        }
    }

    /// Creates a maximal-length Fibonacci LFSR from the built-in
    /// primitive-polynomial table, or `None` if the degree is not
    /// tabulated.
    pub fn maximal(width: u32, seed: u64) -> Option<Self> {
        Some(Lfsr::new(
            width,
            primitive_taps(width)?,
            seed,
            LfsrForm::Fibonacci,
        ))
    }

    /// Register width in bits.
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Current register contents.
    pub fn state(&self) -> u64 {
        self.state
    }

    /// Advances one clock and returns the output bit (the bit shifted out
    /// of position 0).
    pub fn step(&mut self) -> bool {
        let out = self.state & 1 == 1;
        match self.form {
            LfsrForm::Fibonacci => {
                let feedback = u64::from((self.state & self.taps).count_ones() & 1);
                self.state = (self.state >> 1) | (feedback << (self.width - 1));
            }
            LfsrForm::Galois => {
                self.state >>= 1;
                if out {
                    self.state ^= self.taps >> 1 | (1 << (self.width - 1));
                }
            }
        }
        out
    }

    /// Collects the next `bits` output bits into a word (bit 0 first).
    ///
    /// # Panics
    ///
    /// Panics if `bits > 64`.
    pub fn next_word(&mut self, bits: u32) -> u64 {
        assert!(bits <= 64);
        let mut w = 0u64;
        for k in 0..bits {
            w |= u64::from(self.step()) << k;
        }
        w
    }
}

fn width_mask(width: u32) -> u64 {
    if width == 64 {
        u64::MAX
    } else {
        (1u64 << width) - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fibonacci_period_is_maximal() {
        let mut lfsr = Lfsr::maximal(10, 1).unwrap();
        let start = lfsr.state();
        let mut period = 0u64;
        loop {
            lfsr.step();
            period += 1;
            if lfsr.state() == start {
                break;
            }
            assert!(period <= 1023);
        }
        assert_eq!(period, 1023);
    }

    #[test]
    fn galois_period_is_maximal() {
        let mut lfsr = Lfsr::new(
            9,
            primitive_taps(9).unwrap(),
            7,
            LfsrForm::Galois,
        );
        let start = lfsr.state();
        let mut period = 0u64;
        loop {
            lfsr.step();
            period += 1;
            if lfsr.state() == start {
                break;
            }
            assert!(period <= 511);
        }
        assert_eq!(period, 511);
    }

    #[test]
    fn zero_seed_is_replaced() {
        let lfsr = Lfsr::maximal(8, 0).unwrap();
        assert_ne!(lfsr.state(), 0);
    }

    #[test]
    fn output_bits_are_balanced_over_a_period() {
        let mut lfsr = Lfsr::maximal(12, 99).unwrap();
        let period = (1u64 << 12) - 1;
        let ones: u64 = (0..period).map(|_| u64::from(lfsr.step())).sum();
        // A maximal sequence has 2^(n-1) ones and 2^(n-1) - 1 zeros.
        assert_eq!(ones, 1 << 11);
    }

    #[test]
    fn next_word_packs_lsb_first() {
        let mut a = Lfsr::maximal(16, 3).unwrap();
        let mut b = a.clone();
        let word = a.next_word(8);
        for k in 0..8 {
            assert_eq!((word >> k) & 1 == 1, b.step());
        }
    }

    #[test]
    #[should_panic(expected = "taps must fit")]
    fn oversized_taps_rejected() {
        let _ = Lfsr::new(4, 0x30, 1, LfsrForm::Fibonacci);
    }
}

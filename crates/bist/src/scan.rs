//! Scan-path test application and self-test timing.
//!
//! "The most widely used self test techniques configure the circuit
//! registers to linear feedback shift registers … Therefore we can
//! restrict our examinations to combinational networks" (§2.1): a
//! sequential design under scan test is its combinational core plus a
//! shift chain through the state registers.  This module models the cost
//! side of that reduction — how long a random test of `N` patterns takes
//! on silicon — which is what the paper's §5.3 claim "an optimized random
//! self test needs less than 1 sec test time" is about.

use std::time::Duration;

/// A scan-based self-test configuration: how patterns physically reach
/// the combinational core.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TestAccess {
    /// Full parallel access (BILBO registers on every core input):
    /// one clock per pattern.
    Parallel,
    /// One scan chain of the given length: a pattern costs
    /// `chain_length` shift clocks plus one capture clock.
    ScanChain {
        /// Number of scan cells in the chain.
        chain_length: usize,
    },
    /// Multiple balanced scan chains: cost is the longest chain + 1.
    MultiChain {
        /// Total scan cells.
        cells: usize,
        /// Number of parallel chains.
        chains: usize,
    },
}

impl TestAccess {
    /// Clock cycles needed to apply one test pattern.
    pub fn cycles_per_pattern(&self) -> u64 {
        match *self {
            TestAccess::Parallel => 1,
            TestAccess::ScanChain { chain_length } => chain_length as u64 + 1,
            TestAccess::MultiChain { cells, chains } => {
                let chains = chains.max(1);
                (cells.div_ceil(chains)) as u64 + 1
            }
        }
    }

    /// Total clock cycles for an `n`-pattern test.
    pub fn cycles(&self, n: f64) -> f64 {
        n * self.cycles_per_pattern() as f64
    }

    /// Wall-clock test time at the given test clock frequency.
    ///
    /// # Panics
    ///
    /// Panics if `clock_hz` is not positive.
    pub fn test_time(&self, n: f64, clock_hz: f64) -> Duration {
        assert!(clock_hz > 0.0, "clock must be positive");
        Duration::from_secs_f64(self.cycles(n) / clock_hz)
    }
}

/// Convenience: the paper's §5.3 economics check — whether a random test
/// of length `n` finishes within `budget` at `clock_hz` under the given
/// access mechanism.
pub fn fits_test_budget(access: TestAccess, n: f64, clock_hz: f64, budget: Duration) -> bool {
    access.test_time(n, clock_hz) <= budget
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycle_counts() {
        assert_eq!(TestAccess::Parallel.cycles_per_pattern(), 1);
        assert_eq!(
            TestAccess::ScanChain { chain_length: 48 }.cycles_per_pattern(),
            49
        );
        assert_eq!(
            TestAccess::MultiChain {
                cells: 48,
                chains: 4
            }
            .cycles_per_pattern(),
            13
        );
    }

    #[test]
    fn paper_claim_optimized_s1_under_one_second() {
        // §5.3: "for all circuits … an optimized random self test needs
        // less than 1 sec test time".  Our optimized S1 length is ~4.3e4;
        // with its 48 inputs as one scan chain at a modest 10 MHz:
        let access = TestAccess::ScanChain { chain_length: 48 };
        assert!(fits_test_budget(
            access,
            4.3e4,
            10e6,
            Duration::from_secs(1)
        ));
        // …while the conventional 7.2e9 patterns blow any budget:
        assert!(!fits_test_budget(
            access,
            7.2e9,
            10e6,
            Duration::from_secs(60)
        ));
    }

    #[test]
    fn multichain_beats_single_chain() {
        let single = TestAccess::ScanChain { chain_length: 128 };
        let multi = TestAccess::MultiChain {
            cells: 128,
            chains: 8,
        };
        assert!(multi.cycles(1e4) < single.cycles(1e4));
    }

    #[test]
    fn test_time_scales_with_clock() {
        let access = TestAccess::Parallel;
        let slow = access.test_time(1e6, 1e6);
        let fast = access.test_time(1e6, 1e8);
        assert_eq!(slow, Duration::from_secs(1));
        assert_eq!(fast, Duration::from_millis(10));
    }

    #[test]
    fn zero_chain_degenerates_to_parallel_plus_capture() {
        assert_eq!(
            TestAccess::ScanChain { chain_length: 0 }.cycles_per_pattern(),
            1
        );
    }
}

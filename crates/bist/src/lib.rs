//! Built-in self-test (BIST) hardware models.
//!
//! "The most widely used self test techniques configure the circuit
//! registers to linear feedback shift registers in order to produce and to
//! evaluate test patterns" (paper §2.1).  This crate models that hardware:
//!
//! * [`Lfsr`] — linear feedback shift registers (Fibonacci and Galois),
//!   with a table of primitive polynomials for maximal-length sequences;
//! * [`Misr`] — multiple-input signature registers for response
//!   compaction;
//! * [`WeightedLfsr`] — the weighted-pattern generator: per-input dyadic
//!   weights realized by ANDing LFSR bits, the hardware the optimized
//!   probabilities of the paper are quantized for;
//! * [`SelfTestSession`] — a BILBO-style self-test run: generate weighted
//!   patterns, simulate the circuit under test, compact responses into a
//!   signature, and compare against the fault-free golden signature.
//!
//! # Example
//!
//! ```
//! use wrt_bist::Lfsr;
//! let mut lfsr = Lfsr::maximal(8, 1).expect("degree 8 is tabulated");
//! let first: Vec<bool> = (0..8).map(|_| lfsr.step()).collect();
//! assert_eq!(first.len(), 8);
//! ```

#![forbid(unsafe_code)]

mod bilbo;
mod lfsr;
mod misr;
mod polynomials;
mod scan;
mod sequential;
mod weighted;

pub use bilbo::{SelfTestOutcome, SelfTestSession};
pub use lfsr::{Lfsr, LfsrForm};
pub use misr::Misr;
pub use polynomials::{primitive_taps, MAX_TABULATED_DEGREE};
pub use scan::{fits_test_budget, TestAccess};
pub use sequential::{accumulator, SequentialCircuit, SequentialError};
pub use weighted::{DyadicWeight, WeightedLfsr, STREAM_DEGREE};

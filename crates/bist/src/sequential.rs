//! Sequential circuits under scan: the §2.1 reduction made concrete.
//!
//! The paper restricts itself to combinational networks because scan-based
//! self test makes the state registers directly controllable and
//! observable: "the most widely used self test techniques configure the
//! circuit registers to linear feedback shift registers".  This module
//! models that reduction: a [`SequentialCircuit`] is a combinational core
//! whose pseudo-primary inputs/outputs (PPI/PPO) correspond to flip-flops;
//! its *scan-test view* is exactly the combinational [`Circuit`] the rest
//! of the workspace analyzes, and its test-application cost is a scan
//! chain over the registers ([`crate::TestAccess`]).

use std::fmt;

use wrt_circuit::{Circuit, GateKind, NodeId};

/// Error constructing a [`SequentialCircuit`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SequentialError {
    /// A pseudo-primary input is not a primary input of the core.
    BadPseudoInput(NodeId),
    /// A pseudo-primary output is not a primary output of the core.
    BadPseudoOutput(NodeId),
    /// The same node was registered twice.
    DuplicateRegister(NodeId),
}

impl fmt::Display for SequentialError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SequentialError::BadPseudoInput(n) => {
                write!(f, "node {n} is not a primary input of the core")
            }
            SequentialError::BadPseudoOutput(n) => {
                write!(f, "node {n} is not a primary output of the core")
            }
            SequentialError::DuplicateRegister(n) => {
                write!(f, "node {n} used by more than one register")
            }
        }
    }
}

impl std::error::Error for SequentialError {}

/// A synchronous sequential circuit: combinational core + D flip-flops.
///
/// Register *k* samples the core output `registers[k].1` each clock and
/// drives the core input `registers[k].0` the next cycle.  Under scan
/// test the registers form a shift chain, which reduces testing to the
/// combinational core — the paper's standing assumption.
#[derive(Debug, Clone)]
pub struct SequentialCircuit {
    core: Circuit,
    registers: Vec<(NodeId, NodeId)>,
}

impl SequentialCircuit {
    /// Builds a sequential circuit from a core and register bindings
    /// `(pseudo input, pseudo output)`.
    ///
    /// # Errors
    ///
    /// Rejects bindings whose pseudo input is not a core primary input,
    /// whose pseudo output is not a core primary output, or that reuse a
    /// node.
    pub fn new(
        core: Circuit,
        registers: Vec<(NodeId, NodeId)>,
    ) -> Result<Self, SequentialError> {
        let mut seen_in = std::collections::HashSet::new();
        let mut seen_out = std::collections::HashSet::new();
        for &(ppi, ppo) in &registers {
            if core.node(ppi).kind() != GateKind::Input {
                return Err(SequentialError::BadPseudoInput(ppi));
            }
            if !core.is_output(ppo) {
                return Err(SequentialError::BadPseudoOutput(ppo));
            }
            if !seen_in.insert(ppi) {
                return Err(SequentialError::DuplicateRegister(ppi));
            }
            if !seen_out.insert(ppo) {
                return Err(SequentialError::DuplicateRegister(ppo));
            }
        }
        Ok(SequentialCircuit { core, registers })
    }

    /// The combinational core — the scan-test view the optimizer, fault
    /// simulator and ATPG all operate on.
    pub fn scan_view(&self) -> &Circuit {
        &self.core
    }

    /// Number of flip-flops.
    pub fn num_registers(&self) -> usize {
        self.registers.len()
    }

    /// The true primary inputs (core inputs that are not pseudo inputs),
    /// in core input order.
    pub fn primary_inputs(&self) -> Vec<NodeId> {
        self.core
            .inputs()
            .iter()
            .copied()
            .filter(|i| !self.registers.iter().any(|&(ppi, _)| ppi == *i))
            .collect()
    }

    /// The scan-test access mechanism: one chain over the registers.
    pub fn scan_access(&self) -> crate::TestAccess {
        crate::TestAccess::ScanChain {
            chain_length: self.num_registers(),
        }
    }

    /// Simulates one functional clock cycle.
    ///
    /// `primary` holds the true primary-input values (in
    /// [`SequentialCircuit::primary_inputs`] order), `state` the current
    /// register contents.  Returns `(primary outputs, next state)`, where
    /// the primary outputs exclude the pseudo outputs.
    ///
    /// # Panics
    ///
    /// Panics if the slice lengths do not match the interface.
    pub fn cycle(&self, primary: &[bool], state: &[bool]) -> (Vec<bool>, Vec<bool>) {
        let pis = self.primary_inputs();
        assert_eq!(primary.len(), pis.len(), "one value per primary input");
        assert_eq!(state.len(), self.registers.len(), "one value per register");
        let mut assignment = vec![false; self.core.num_inputs()];
        for (&pi, &v) in pis.iter().zip(primary) {
            assignment[self.core.input_position(pi).expect("pi")] = v;
        }
        for (&(ppi, _), &v) in self.registers.iter().zip(state) {
            assignment[self.core.input_position(ppi).expect("ppi")] = v;
        }
        let outputs = wrt_sim_compatible_eval(&self.core, &assignment);
        let next_state: Vec<bool> = self
            .registers
            .iter()
            .map(|&(_, ppo)| {
                let pos = self
                    .core
                    .outputs()
                    .iter()
                    .position(|&o| o == ppo)
                    .expect("validated");
                outputs[pos]
            })
            .collect();
        let primary_outputs: Vec<bool> = self
            .core
            .outputs()
            .iter()
            .enumerate()
            .filter(|(_, o)| !self.registers.iter().any(|&(_, ppo)| ppo == **o))
            .map(|(k, _)| outputs[k])
            .collect();
        (primary_outputs, next_state)
    }
}

/// Scalar core evaluation (kept local so `wrt-bist` does not need
/// `wrt-sim` at runtime for this path).
fn wrt_sim_compatible_eval(circuit: &Circuit, assignment: &[bool]) -> Vec<bool> {
    let mut values = vec![false; circuit.num_nodes()];
    let mut buf = Vec::new();
    for (id, node) in circuit.iter() {
        values[id.index()] = match node.kind() {
            GateKind::Input => assignment[circuit.input_position(id).expect("pi")],
            kind => {
                buf.clear();
                buf.extend(node.fanin().iter().map(|f| values[f.index()]));
                kind.eval(&buf)
            }
        };
    }
    circuit
        .outputs()
        .iter()
        .map(|&o| values[o.index()])
        .collect()
}

/// A `width`-bit accumulator: registers hold `S`, each cycle computes
/// `S := S + IN` with an overflow flag — a small sequential workload for
/// the scan reduction.
///
/// # Panics
///
/// Panics if `width == 0`.
pub fn accumulator(width: usize) -> SequentialCircuit {
    assert!(width > 0);
    let mut b = wrt_circuit::CircuitBuilder::named(format!("acc{width}"));
    let data: Vec<NodeId> = (0..width).map(|i| b.input(format!("IN{i}"))).collect();
    let state: Vec<NodeId> = (0..width).map(|i| b.input(format!("S{i}"))).collect();
    let mut carry = b.const0();
    let mut next = Vec::with_capacity(width);
    for i in 0..width {
        // Full adder, inline.
        let t = b.xor2(data[i], state[i]).expect("valid");
        let sum = b.xor2(t, carry).expect("valid");
        let c1 = b.and2(data[i], state[i]).expect("valid");
        let c2 = b.and2(t, carry).expect("valid");
        carry = b.or2(c1, c2).expect("valid");
        next.push(sum);
    }
    for (i, &s) in next.iter().enumerate() {
        let out = b
            .gate(GateKind::Buf, format!("NS{i}"), &[s])
            .expect("valid");
        b.mark_output(out);
    }
    let ovf = b.gate(GateKind::Buf, "OVF", &[carry]).expect("valid");
    b.mark_output(ovf);
    // Fold the constant initial carry away so the core is irredundant,
    // then re-resolve the register bindings: `simplify` preserves input
    // names and output order (NS0..NS<w-1>, OVF).
    let core = wrt_circuit::simplify(&b.build().expect("generator produces valid circuits"));
    let registers: Vec<(NodeId, NodeId)> = (0..width)
        .map(|i| {
            (
                core.node_id(&format!("S{i}")).expect("inputs preserved"),
                core.outputs()[i],
            )
        })
        .collect();
    SequentialCircuit::new(core, registers).expect("bindings are valid by construction")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulator_accumulates() {
        let width = 8;
        let seq = accumulator(width);
        assert_eq!(seq.num_registers(), width);
        assert_eq!(seq.primary_inputs().len(), width);
        let mut state = vec![false; width];
        let mut expected = 0u32;
        for add in [13u32, 200, 77, 5] {
            let primary: Vec<bool> = (0..width).map(|i| (add >> i) & 1 == 1).collect();
            let (outs, next) = seq.cycle(&primary, &state);
            expected = expected.wrapping_add(add);
            let got: u32 = next
                .iter()
                .enumerate()
                .filter(|(_, &bit)| bit)
                .map(|(i, _)| 1 << i)
                .sum();
            assert_eq!(got, expected & 0xFF, "after adding {add}");
            assert_eq!(outs.len(), 1, "only OVF is a true primary output");
            state = next;
        }
    }

    #[test]
    fn scan_view_is_a_plain_combinational_circuit() {
        // The reduction: everything in the workspace applies directly.
        let seq = accumulator(6);
        let core = seq.scan_view();
        let faults = wrt_fault::FaultList::checkpoints(core).collapse_equivalent(core);
        assert!(!faults.is_empty());
        let access = seq.scan_access();
        assert_eq!(access.cycles_per_pattern(), 7);
    }

    #[test]
    fn register_bindings_are_validated() {
        let seq = accumulator(4);
        let core = seq.scan_view().clone();
        let some_gate = core
            .ids()
            .find(|&id| core.node(id).kind() != GateKind::Input)
            .expect("has gates");
        let err = SequentialCircuit::new(core.clone(), vec![(some_gate, core.outputs()[0])]);
        assert!(matches!(err, Err(SequentialError::BadPseudoInput(_))));
        let pi = core.inputs()[0];
        let err = SequentialCircuit::new(core.clone(), vec![(pi, pi)]);
        assert!(matches!(err, Err(SequentialError::BadPseudoOutput(_))));
        let err = SequentialCircuit::new(
            core.clone(),
            vec![
                (core.inputs()[0], core.outputs()[0]),
                (core.inputs()[0], core.outputs()[1]),
            ],
        );
        assert!(matches!(err, Err(SequentialError::DuplicateRegister(_))));
    }

    #[test]
    fn scan_test_of_the_accumulator_core_reaches_full_coverage() {
        // The point of the reduction: random patterns over PIs *and* PPIs
        // test the core completely, which no functional-input-only test
        // could guarantee.
        let seq = accumulator(6);
        let core = seq.scan_view();
        let faults = wrt_fault::FaultList::checkpoints(core).collapse_equivalent(core);
        let source = wrt_sim::WeightedPatterns::equiprobable(core.num_inputs(), 3);
        let result = wrt_sim::fault_coverage(core, &faults, source, 2048, true);
        assert_eq!(result.coverage(), 1.0, "{result}");
    }
}

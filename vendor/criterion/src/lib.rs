//! Miniature, offline, API-compatible subset of the `criterion` crate.
//!
//! Covers the surface used by the `wrt` benches: `criterion_group!` /
//! `criterion_main!`, [`Criterion::bench_function`],
//! [`Criterion::benchmark_group`] with `sample_size` / `throughput` /
//! `finish`, [`Bencher::iter`], [`BenchmarkId`], and [`Throughput`].
//! Reports median and mean wall-clock time per iteration (and derived
//! element throughput) — sufficient for relative comparisons, without the
//! real crate's statistical analysis, plots, or baselines.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Wall-clock budget per benchmark (split across samples).
const MEASURE_BUDGET: Duration = Duration::from_millis(600);
const WARMUP_BUDGET: Duration = Duration::from_millis(100);

/// Top-level benchmark driver.
pub struct Criterion {
    samples: usize,
    filters: Vec<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { samples: 10, filters: Vec::new() }
    }
}

impl Criterion {
    /// Picks up substring filters from the command line, so
    /// `cargo bench -- <name>` runs only matching benchmarks (flags such
    /// as cargo's own `--bench` are ignored).
    pub fn configure_from_args(mut self) -> Self {
        self.filters = std::env::args()
            .skip(1)
            .filter(|a| !a.starts_with('-'))
            .collect();
        self
    }

    fn matches(&self, id: &str) -> bool {
        self.filters.is_empty() || self.filters.iter().any(|f| id.contains(f.as_str()))
    }

    /// Runs a single benchmark under `id`.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        if self.matches(id) {
            run_benchmark(id, self.samples, None, f);
        }
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            samples: self.samples,
            throughput: None,
            parent: self,
        }
    }

    /// Called by `criterion_main!` after all groups ran.
    pub fn final_summary(&self) {}
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    samples: usize,
    throughput: Option<Throughput>,
    parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timing samples collected per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(2);
        self
    }

    /// Declares work-per-iteration so a rate can be reported.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function<ID, F>(&mut self, id: ID, f: F) -> &mut Self
    where
        ID: IntoBenchmarkId,
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into_benchmark_id());
        if self.parent.matches(&full) {
            run_benchmark(&full, self.samples, self.throughput, f);
        }
        self
    }

    /// Runs one benchmark receiving an input by reference.
    pub fn bench_with_input<ID, I, F>(&mut self, id: ID, input: &I, mut f: F) -> &mut Self
    where
        ID: IntoBenchmarkId,
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.into_benchmark_id());
        if self.parent.matches(&full) {
            run_benchmark(&full, self.samples, self.throughput, |b| f(b, input));
        }
        self
    }

    /// Closes the group.
    pub fn finish(self) {}
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` calls of `f`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

/// A benchmark identifier with a function name and a parameter.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId { id: format!("{}/{}", name.into(), parameter) }
    }

    /// Just the parameter.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

/// Conversion into the string id used for reporting.
pub trait IntoBenchmarkId {
    /// The full id string.
    fn into_benchmark_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> String {
        self
    }
}

/// Work performed per iteration, for rate reporting.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

fn run_benchmark<F>(id: &str, samples: usize, throughput: Option<Throughput>, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    // Calibrate: run single iterations until the warmup budget is spent to
    // estimate the per-iteration cost.
    let calib_start = Instant::now();
    let mut calib_iters = 0u32;
    while calib_start.elapsed() < WARMUP_BUDGET && calib_iters < 1_000 {
        let mut b = Bencher { iters: 1, elapsed: Duration::ZERO };
        f(&mut b);
        calib_iters += 1;
    }
    let per_iter = calib_start.elapsed() / calib_iters.max(1);

    // Split the measurement budget into `samples` timed batches.
    let per_sample = MEASURE_BUDGET / samples as u32;
    let iters = (per_sample.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 1 << 24) as u64;
    let mut times: Vec<Duration> = Vec::with_capacity(samples);
    for _ in 0..samples {
        let mut b = Bencher { iters, elapsed: Duration::ZERO };
        f(&mut b);
        times.push(b.elapsed / iters as u32);
    }
    times.sort();
    let median = times[times.len() / 2];
    let mean = times.iter().sum::<Duration>() / times.len() as u32;

    let rate = match throughput {
        Some(Throughput::Elements(n)) => {
            let per_sec = n as f64 / median.as_secs_f64();
            format!("  thrpt: {} elem/s", human_count(per_sec))
        }
        Some(Throughput::Bytes(n)) => {
            let per_sec = n as f64 / median.as_secs_f64();
            format!("  thrpt: {}B/s", human_count(per_sec))
        }
        None => String::new(),
    };
    println!(
        "{id:<56} time: [median {} mean {}] ({} iter × {} samples){rate}",
        human_time(median),
        human_time(mean),
        iters,
        samples,
    );
}

fn human_time(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

fn human_count(x: f64) -> String {
    if x >= 1e9 {
        format!("{:.2} G", x / 1e9)
    } else if x >= 1e6 {
        format!("{:.2} M", x / 1e6)
    } else if x >= 1e3 {
        format!("{:.2} K", x / 1e3)
    } else {
        format!("{x:.1} ")
    }
}

/// Groups benchmark functions, as in the real crate.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default().configure_from_args();
            targets = $($target),+
        );
    };
}

/// Generates `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

//! Test-case configuration, error type, and the deterministic RNG.

use std::fmt;

/// Per-test configuration (subset of the real crate's fields).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` generated inputs per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Why a single generated case failed.
#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// The property did not hold.
    Fail(String),
    /// The inputs were rejected (kept for API compatibility).
    Reject(String),
}

impl TestCaseError {
    /// A failed assertion with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// A rejected input with the given reason.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Fail(m) => write!(f, "{m}"),
            TestCaseError::Reject(m) => write!(f, "input rejected: {m}"),
        }
    }
}

/// Result of one generated case.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Deterministic splitmix64-based RNG.
///
/// Each property test derives its stream from the test's name, so runs are
/// reproducible across processes and machines while distinct tests see
/// distinct inputs.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the stream from a property-test name.
    pub fn from_name(name: &str) -> Self {
        // FNV-1a over the name, folded into a non-zero seed.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng { state: h | 1 }
    }

    /// Next 64 uniformly random bits (splitmix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // Multiply-shift rejection-free mapping is fine at test scales.
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

//! Miniature, offline, API-compatible subset of the `proptest` crate.
//!
//! Implements exactly the surface used by the `wrt` workspace: the
//! [`proptest!`] macro, [`prop_assert!`]/[`prop_assert_eq!`], the
//! [`Strategy`] trait with `prop_map`, [`any`], `collection::vec`,
//! `sample::select`, [`Just`], and range strategies for integers and
//! floats.  Inputs are generated from a deterministic per-test RNG; there
//! is no shrinking — failing cases print the generated inputs instead.

pub mod collection;
pub mod sample;
pub mod strategy;
pub mod test_runner;

pub use strategy::{any, Just, Strategy};
pub use test_runner::{ProptestConfig, TestCaseError, TestCaseResult, TestRng};

/// Everything a property test module needs, importable in one line.
pub mod prelude {
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
    /// Alias so `prop::sample::select` and friends resolve as in the real
    /// crate's prelude.
    pub use crate as prop;
}

/// Defines property tests.
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn it_holds(x in 0usize..100, ys in proptest::collection::vec(any::<bool>(), 3)) {
///         prop_assert!(x < 100);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (@cfg ($config:expr)
        $(
            $(#[$attr:meta])*
            fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$attr])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                let mut rng = $crate::TestRng::from_name(stringify!($name));
                // Build the strategies once; a tuple of strategies is
                // itself a strategy producing the input tuple.
                let strategy = ($(($strat),)+);
                for case in 0..config.cases {
                    // Snapshot so a failing case can be re-generated for
                    // display without Debug-formatting every passing one.
                    let rng_before = rng.clone();
                    let ($($pat,)+) = $crate::Strategy::generate(&strategy, &mut rng);
                    let outcome = ::std::panic::catch_unwind(
                        ::std::panic::AssertUnwindSafe(|| -> $crate::TestCaseResult { $body Ok(()) }),
                    );
                    match outcome {
                        Ok(Ok(())) => {}
                        Ok(Err(err)) => {
                            let mut replay = rng_before;
                            panic!(
                                "proptest case {}/{} failed: {}\ninputs: {:?}",
                                case + 1, config.cases, err,
                                $crate::Strategy::generate(&strategy, &mut replay)
                            );
                        }
                        Err(payload) => {
                            let mut replay = rng_before;
                            eprintln!(
                                "proptest case {}/{} panicked\ninputs: {:?}",
                                case + 1, config.cases,
                                $crate::Strategy::generate(&strategy, &mut replay)
                            );
                            ::std::panic::resume_unwind(payload);
                        }
                    }
                }
            }
        )*
    };
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@cfg ($config) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@cfg ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Asserts a condition inside a `proptest!` body, failing the current case
/// (with the generated inputs echoed) instead of unwinding immediately.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// `assert_eq!` analogue of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err($crate::TestCaseError::fail(format!(
                "{}\n  left: {:?}\n right: {:?}",
                format!($($fmt)*), l, r
            )));
        }
    }};
}

/// `assert_ne!` analogue of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: {} != {}\n  both: {:?}",
            stringify!($left), stringify!($right), l
        );
    }};
}

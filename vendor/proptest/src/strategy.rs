//! The [`Strategy`] trait and the built-in input generators.

use crate::test_runner::TestRng;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of one type.
///
/// Unlike the real crate there is no value tree / shrinking: `generate`
/// directly produces a value from the RNG.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<T, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> T,
    {
        Map { inner: self, f }
    }

    /// Generates with `f` from a freshly drawn value (flat map).
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// See [`Strategy::prop_map`].
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, T> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Clone, Debug)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, F, S2> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Always generates a clone of the wrapped value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// The canonical strategy for this type.
    type Strategy: Strategy<Value = Self>;
    /// Returns the canonical strategy.
    fn arbitrary() -> Self::Strategy;
}

/// The canonical strategy for `T` (`any::<bool>()` etc.).
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// Strategy generating any value of a primitive type.
#[derive(Clone, Debug)]
pub struct AnyPrimitive<T>(PhantomData<T>);

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Strategy for AnyPrimitive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
        impl Arbitrary for $t {
            type Strategy = AnyPrimitive<$t>;
            fn arbitrary() -> Self::Strategy {
                AnyPrimitive(PhantomData)
            }
        }
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full-width inclusive range.
                    rng.next_u64() as $t
                } else {
                    lo.wrapping_add(rng.below(span) as $t)
                }
            }
        }
    )*};
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for AnyPrimitive<bool> {
    type Value = bool;
    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for bool {
    type Strategy = AnyPrimitive<bool>;
    fn arbitrary() -> Self::Strategy {
        AnyPrimitive(PhantomData)
    }
}

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        // unit_f64 is half-open; nudge to cover the closed upper end.
        let u = (rng.unit_f64() * 1.000_000_000_1).min(1.0);
        lo + u * (hi - lo)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> f32 {
        self.start + rng.unit_f64() as f32 * (self.end - self.start)
    }
}

macro_rules! strategy_tuple {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}

strategy_tuple! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

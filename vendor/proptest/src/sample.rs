//! Sampling strategies (`prop::sample::select`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Strategy drawing a uniformly random element of `options` (cloned).
pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
    assert!(!options.is_empty(), "select requires at least one option");
    Select { options }
}

/// See [`select`].
#[derive(Clone, Debug)]
pub struct Select<T: Clone> {
    options: Vec<T>,
}

impl<T: Clone> Strategy for Select<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.options.len() as u64) as usize;
        self.options[i].clone()
    }
}

//! `wrt` — weighted random testing with optimized input probabilities.
//!
//! Umbrella crate for the workspace reproducing H.-J. Wunderlich,
//! *On Computing Optimized Input Probabilities for Random Tests*
//! (DAC 1987).  It re-exports the subsystem crates:
//!
//! * [`circuit`] — gate-level netlists, `.bench` parsing, levelization;
//! * [`fault`] — single stuck-at fault model and collapsing;
//! * [`sim`] — bit-parallel logic and PPSFP fault simulation;
//! * [`estimate`] — signal/detection probability engines (COP, STAFAN,
//!   Monte-Carlo, exact, cutting-algorithm bounds);
//! * [`core`] — the paper's optimizer (`OPTIMIZE`/`NORMALIZE`/`MINIMIZE`),
//!   test-length computation, quantization, fault-set partitioning;
//! * [`bist`] — LFSR/MISR/weighted-pattern hardware models and BILBO
//!   self-test sessions;
//! * [`atpg`] — PODEM deterministic test generation and complete
//!   redundancy identification (the §5.2 comparator);
//! * [`analyze`] — simulation-free static analysis: SCOAP testability,
//!   structural lints, FFR/reconvergence census, and the seeds the
//!   optimizer and PODEM consume;
//! * [`robust`] — run-to-completion resilience: budgets with structured
//!   interruption, checkpoint/resume sidecars, the graceful-degradation
//!   ladder, and the deterministic fail-point registry;
//! * [`serve`] — testability-as-a-service: the resident `wrt serve`
//!   server, its shared engine registry, the line protocol, and the
//!   verb hub the batch CLI shares with it;
//! * [`workloads`] — the twelve benchmark circuit generators.
//!
//! # Quickstart
//!
//! ```
//! use wrt::prelude::*;
//!
//! # fn main() -> Result<(), wrt::circuit::ParseBenchError> {
//! let circuit = wrt::circuit::parse_bench(
//!     "INPUT(a)\nINPUT(b)\nINPUT(c)\nINPUT(d)\nOUTPUT(y)\ny = AND(a, b, c, d)\n",
//! )?;
//! let faults = FaultList::checkpoints(&circuit);
//! let mut engine = CopEngine::new();
//! let result = optimize(&circuit, &faults, &mut engine, &OptimizeConfig::default());
//! assert!(result.final_length <= result.initial_length);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]

pub use wrt_analyze as analyze;
pub use wrt_atpg as atpg;
pub use wrt_bist as bist;
pub use wrt_circuit as circuit;
pub use wrt_core as core;
pub use wrt_estimate as estimate;
pub use wrt_fault as fault;
pub use wrt_robust as robust;
pub use wrt_serve as serve;
pub use wrt_sim as sim;
pub use wrt_workloads as workloads;

/// The most commonly used items, importable in one line.
pub mod prelude {
    pub use wrt_analyze::{analyze, lint_circuit, scoap_seed_weights, Scoap};
    pub use wrt_atpg::{generate_tests, AtpgConfig, AtpgOutcome, BacktraceGuidance, Podem};
    pub use wrt_bist::{Lfsr, Misr, SelfTestSession, WeightedLfsr};
    pub use wrt_circuit::{Circuit, CircuitBuilder, GateKind, NodeId};
    pub use wrt_core::{
        optimize, optimize_partitioned, quantize_weights, required_test_length, OptimizeConfig,
        TestLength,
    };
    pub use wrt_estimate::{
        CopEngine, DetectionProbabilityEngine, ExactEngine, MonteCarloEngine, StafanEngine,
    };
    pub use wrt_fault::{Fault, FaultList, FaultSite};
    pub use wrt_robust::{Budget, BudgetExceeded, Checkpoint, RunOutcome};
    pub use wrt_sim::{
        detection_counts, fault_coverage, FaultSimulator, LogicSim, PatternSource,
        WeightedPatterns,
    };
}
